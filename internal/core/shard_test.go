package core_test

// Engine-level pins for the sharded ingest subsystem: many distinct standing
// queries spread across shard workers must observe delta sequences
// byte-identical to a serial-fan-out engine and to post-hoc replay, and
// checkpoint + WAL recovery must hold through the sharded commit path.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/nexmark"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/wal"
)

// shardBidQueries builds n distinct NEXMark standing queries (different
// tumble widths → different plan keys → different resident sessions), so the
// manager actually spreads them across shards.
func shardBidQueries(n int) []string {
	durs := []int{4, 5, 8, 10, 15, 20, 25, 30}
	qs := make([]string, n)
	for i := range qs {
		qs[i] = fmt.Sprintf(`
SELECT TB.auction auction, TB.wstart wstart, TB.wend wend, MAX(TB.price) maxPrice
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '%d' SECONDS) TB
GROUP BY TB.auction, TB.wstart, TB.wend
EMIT STREAM AFTER WATERMARK`, durs[i%len(durs)])
	}
	return qs
}

func newShardedBidEngine(t testing.TB, shards int) *core.Engine {
	t.Helper()
	e := core.NewEngine(core.WithShards(shards))
	if err := e.RegisterStream("Bid", nexmark.BidFullSchema()); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedEngineMatchesSerial: six distinct standing queries on a
// 4-shard engine, fed the NEXMark stream in random batches with heartbeats
// interleaved, must each produce the stream a serial-fan-out twin produces —
// and both must equal the post-hoc QueryStream replay. This is the
// byte-identical acceptance pin at the engine layer.
func TestShardedEngineMatchesSerial(t *testing.T) {
	g := liveData(t)
	queries := shardBidQueries(6)
	last := g.Bids[len(g.Bids)-1]

	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", g.Bids); err != nil {
		t.Fatal(err)
	}

	serial := newBidEngine(t)
	sharded := newShardedBidEngine(t, 4)
	defer sharded.Close()
	if got := sharded.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}

	opts := core.SubscribeOptions{Buffer: len(g.Bids) + 16}
	type pair struct{ serial, sharded *live.Subscription }
	subs := make([]pair, len(queries))
	for i, q := range queries {
		ss, err := serial.SubscribeStream(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := sharded.SubscribeStream(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = pair{ss, sh}
	}

	rng := rand.New(rand.NewSource(42))
	pt := types.Time(0)
	for i := 0; i < len(g.Bids); {
		end := i + 1 + rng.Intn(8)
		if end > len(g.Bids) {
			end = len(g.Bids)
		}
		batch := g.Bids[i:end]
		if err := serial.AppendLog("Bid", batch); err != nil {
			t.Fatal(err)
		}
		if err := sharded.AppendLog("Bid", batch); err != nil {
			t.Fatal(err)
		}
		if ev := batch[len(batch)-1]; ev.Ptime > pt {
			pt = ev.Ptime
		}
		if rng.Intn(4) == 0 {
			// Heartbeats ride the same sharded fan-out; these queries have
			// no delay timers, so they must be delivery-invisible — any
			// divergence below means a heartbeat perturbed a shard.
			if err := serial.Heartbeat(pt); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Heartbeat(pt); err != nil {
				t.Fatal(err)
			}
		}
		i = end
	}
	// Read-your-writes through the sharded path: the one-shot query must
	// reflect every acknowledged append without an explicit Quiesce.
	wantTable, err := serial.QueryTable("SELECT * FROM Bid", last.Ptime)
	if err != nil {
		t.Fatal(err)
	}
	gotTable, err := sharded.QueryTable("SELECT * FROM Bid", last.Ptime)
	if err != nil {
		t.Fatal(err)
	}
	if wantTable.Format() != gotTable.Format() {
		t.Fatal("sharded one-shot query diverges from serial")
	}

	for i, p := range subs {
		q := queries[i]
		finalS, err := p.serial.Close()
		if err != nil {
			t.Fatalf("query %d serial close: %v", i, err)
		}
		finalSh, err := p.sharded.Close()
		if err != nil {
			t.Fatalf("query %d sharded close: %v", i, err)
		}
		wantRows := collectStream(p.serial, finalS)
		gotRows := collectStream(p.sharded, finalSh)
		got := tvr.FormatStreamTable(p.sharded.Schema(), gotRows)
		want := tvr.FormatStreamTable(p.serial.Schema(), wantRows)
		if got != want {
			t.Fatalf("query %d: sharded stream diverges from serial twin:\nserial:\n%s\nsharded:\n%s",
				i, truncate(want), truncate(got))
		}
		replay, err := replayEngine.QueryStream(q)
		if err != nil {
			t.Fatal(err)
		}
		if rep := tvr.FormatStreamTable(replay.Schema, replay.Rows); got != rep {
			t.Fatalf("query %d: sharded stream diverges from post-hoc replay:\nreplay:\n%s\nsharded:\n%s",
				i, truncate(rep), truncate(got))
		}
	}
}

// TestShardedWALRecovery: the crash-recovery contract must survive the
// sharded commit path end to end. Ingest with a mid-stream snapshot on a
// sharded engine (CheckpointAll drains the shards to one commit point),
// crash, recover snapshot + WAL tail into a fresh sharded engine (replay
// re-publishes through the sharded fan-out), and a late attacher to the
// recovered resident pipeline must equal the uninterrupted serial replay.
func TestShardedWALRecovery(t *testing.T) {
	g := liveData(t)
	last := g.Bids[len(g.Bids)-1]
	finalWM := tvr.WatermarkEvent(last.Ptime+1, last.Ptime+types.Time(1000*types.Second))

	replayEngine := newBidEngine(t)
	if err := replayEngine.AppendLog("Bid", append(append(tvr.Changelog{}, g.Bids...), finalWM)); err != nil {
		t.Fatal(err)
	}
	want, err := replayEngine.QueryStream(liveBidQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)

	rng := rand.New(rand.NewSource(17))
	opts := core.SubscribeOptions{Buffer: len(g.Bids) + 16}
	for _, split := range []int{1, len(g.Bids) / 2, len(g.Bids) - 1} {
		dataDir := t.TempDir()
		walDir := filepath.Join(dataDir, "wal")
		ckptPath := filepath.Join(dataDir, "checkpoint.ckpt")
		w, err := wal.Open(walDir, 1, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e := newShardedBidEngine(t, 4)
		if err := e.AttachWAL(w); err != nil {
			t.Fatal(err)
		}
		early, err := e.SubscribeStream(liveBidQuery, opts)
		if err != nil {
			t.Fatal(err)
		}
		ingest := func(from, to int) {
			for i := from; i < to; {
				end := i + 1 + rng.Intn(8)
				if end > to {
					end = to
				}
				if err := e.AppendLog("Bid", g.Bids[i:end]); err != nil {
					t.Fatal(err)
				}
				i = end
			}
		}
		ingest(0, split)
		if _, seq, err := e.CheckpointFile(ckptPath); err != nil {
			t.Fatal(err)
		} else if seq != e.WALSeq() {
			t.Fatalf("split=%d: snapshot at seq %d, engine at %d", split, seq, e.WALSeq())
		}
		ingest(split, len(g.Bids))
		if err := e.Heartbeat(last.Ptime); err != nil {
			t.Fatal(err)
		}
		if err := e.AppendLog("Bid", tvr.Changelog{finalWM}); err != nil {
			t.Fatal(err)
		}
		crashSeq := e.WALSeq()
		early.Cancel() // the crashed process's subscriber is gone
		e.Close()      // crash: no final snapshot; just stop the shard workers

		r := core.NewEngine(core.WithShards(4))
		defer r.Close()
		if err := r.RestoreFile(ckptPath); err != nil {
			t.Fatalf("split=%d: restore: %v", split, err)
		}
		info, err := wal.Replay(walDir, r.ReplayWALRecord)
		if err != nil {
			t.Fatalf("split=%d: wal replay: %v", split, err)
		}
		if info.LastSeq != crashSeq || r.WALSeq() != crashSeq {
			t.Fatalf("split=%d: recovered through seq %d (log says %d), crashed at %d",
				split, r.WALSeq(), info.LastSeq, crashSeq)
		}
		if got := r.LiveSessions(); got != 1 {
			t.Fatalf("split=%d: recovered engine has %d live sessions, want 1", split, got)
		}
		late, err := r.SubscribeStream(liveBidQuery, opts)
		if err != nil {
			t.Fatalf("split=%d: late attach to recovered session: %v", split, err)
		}
		if got := r.LiveSessions(); got != 1 {
			t.Fatalf("split=%d: late attach created a session (%d live), want to share", split, got)
		}
		final, err := late.Close()
		if err != nil {
			t.Fatal(err)
		}
		rows := collectStream(late, final)
		if got := tvr.FormatStreamTable(late.Schema(), rows); got != wantStr {
			t.Fatalf("split=%d: recovered sharded stream diverges from uninterrupted replay:\nwant:\n%s\ngot:\n%s",
				split, truncate(wantStr), truncate(got))
		}
	}
}

// TestShardedEngineCloseStopsWorkers: Close tears the shard workers down
// (goroutine hygiene), is idempotent, and Quiesce after Close returns.
func TestShardedEngineCloseStopsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	e := newShardedBidEngine(t, 8)
	sub, err := e.SubscribeStream(liveBidQuery, core.SubscribeOptions{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog("Bid", liveData(t).Bids[:50]); err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	e.Close()
	e.Close()
	e.Quiesce() // workers are gone; must not hang
	waitForGoroutines(t, base)
}
