package core_test

// Engine-level WAL recovery tests: with a write-ahead log attached, a crash
// at ANY point after a commit is acknowledged — not just at a snapshot
// boundary — must recover to the exact last-committed state. The recovery
// path is the real one: restore the last snapshot file, re-publish the WAL
// tail through the normal commit path, and require the restored engine's
// standing-query output byte-identical to an uninterrupted run (the same
// property TestCheckpointRestoreLive pins for snapshot-only recovery).

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/wal"
)

// walBidEngine builds an empty engine with a WAL attached in dir and then
// registers the Bid stream THROUGH the log (record 1), so recovery rebuilds
// the catalog entry from the log rather than assuming it.
func walBidEngine(t *testing.T, dir string) (*core.Engine, *wal.Writer) {
	t.Helper()
	w, err := wal.Open(dir, 1, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine()
	if err := e.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStream("Bid", liveBidSchema(t)); err != nil {
		t.Fatal(err)
	}
	return e, w
}

// recoverEngine performs the production recovery stitch: fresh engine,
// restore the snapshot when one exists, replay the WAL tail.
func recoverEngine(t *testing.T, ckptPath, walDir string) (*core.Engine, wal.ReplayInfo) {
	t.Helper()
	r := core.NewEngine()
	if ckptPath != "" {
		if err := r.RestoreFile(ckptPath); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	info, err := wal.Replay(walDir, r.ReplayWALRecord)
	if err != nil {
		t.Fatalf("wal replay: %v", err)
	}
	return r, info
}

// TestWALRecoveryLive: ingest a full stream with a snapshot taken at a
// random split point, crash without any further snapshot, recover from
// snapshot + WAL tail, and require (a) everything ingested after the
// snapshot to survive — nothing is rewound — and (b) a late attacher to the
// recovered resident pipeline to be byte-identical to a dedicated twin and
// to the uninterrupted replay, serial and partitioned. Odd split indexes
// truncate the log after the snapshot; even ones crash between snapshot and
// truncation, so recovery must skip the already-covered records by sequence
// number.
func TestWALRecoveryLive(t *testing.T) {
	g := liveData(t)
	last := g.Bids[len(g.Bids)-1]
	finalWM := tvr.WatermarkEvent(last.Ptime+1, last.Ptime+types.Time(1000*types.Second))
	for _, parts := range []int{1, 4} {
		parts := parts
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			// Uninterrupted reference: post-hoc replay over the full log.
			replayEngine := newBidEngine(t)
			if err := replayEngine.AppendLog("Bid", append(append(tvr.Changelog{}, g.Bids...), finalWM)); err != nil {
				t.Fatal(err)
			}
			var want *core.StreamResult
			var err error
			if parts > 1 {
				want, err = replayEngine.QueryStreamParallel(liveBidQuery, parts)
			} else {
				want, err = replayEngine.QueryStream(liveBidQuery)
			}
			if err != nil {
				t.Fatal(err)
			}
			wantStr := tvr.FormatStreamTable(want.Schema, want.Rows)

			rng := rand.New(rand.NewSource(int64(11 * parts)))
			splits := []int{1, len(g.Bids) / 3, len(g.Bids) / 2, len(g.Bids) - 1}
			opts := core.SubscribeOptions{Parts: parts, Buffer: len(g.Bids) + 16}
			exclOpts := opts
			exclOpts.Exclusive = true
			for si, split := range splits {
				dataDir := t.TempDir()
				walDir := filepath.Join(dataDir, "wal")
				ckptPath := filepath.Join(dataDir, "checkpoint.ckpt")
				e, w := walBidEngine(t, dataDir+"/wal")

				early, err := e.SubscribeStream(liveBidQuery, opts)
				if err != nil {
					t.Fatal(err)
				}
				ingest := func(from, to int) {
					for i := from; i < to; {
						end := i + 1 + rng.Intn(8)
						if end > to {
							end = to
						}
						if err := e.AppendLog("Bid", g.Bids[i:end]); err != nil {
							t.Fatal(err)
						}
						i = end
					}
				}
				ingest(0, split)

				// Snapshot mid-stream; on odd iterations also compact the
				// log, on even ones "crash" before the truncation runs.
				_, seq, err := e.CheckpointFile(ckptPath)
				if err != nil {
					t.Fatal(err)
				}
				if seq != e.WALSeq() {
					t.Fatalf("split=%d: snapshot reports seq %d, engine at %d", split, seq, e.WALSeq())
				}
				if si%2 == 1 {
					if err := w.TruncateThrough(seq); err != nil {
						t.Fatal(err)
					}
				}

				// Everything after this point exists ONLY in the WAL tail.
				ingest(split, len(g.Bids))
				if err := e.Heartbeat(last.Ptime); err != nil {
					t.Fatal(err)
				}
				if err := e.AppendLog("Bid", tvr.Changelog{finalWM}); err != nil {
					t.Fatal(err)
				}
				crashSeq := e.WALSeq()
				early.Cancel() // the crashed process's subscriber is gone

				// Crash: no Close, no final snapshot. Recover from the
				// snapshot plus the log tail.
				r, info := recoverEngine(t, ckptPath, walDir)
				if info.LastSeq != crashSeq || r.WALSeq() != crashSeq {
					t.Fatalf("split=%d: recovered through seq %d (log says %d), crashed at %d",
						split, r.WALSeq(), info.LastSeq, crashSeq)
				}
				// Nothing ingested after the snapshot was rewound.
				log, err := r.Log("Bid")
				if err != nil {
					t.Fatal(err)
				}
				if len(log) != len(g.Bids)+1 {
					t.Fatalf("split=%d: recovered changelog has %d events, want %d — post-snapshot commits were rewound",
						split, len(log), len(g.Bids)+1)
				}

				// The snapshot carried the resident pipeline; the WAL tail
				// caught it up through the normal commit path. A late
				// attacher must land on it and equal both a dedicated twin
				// and the uninterrupted replay.
				if got := r.LiveSessions(); got != 1 {
					t.Fatalf("split=%d: recovered engine has %d live sessions, want 1", split, got)
				}
				late, err := r.SubscribeStream(liveBidQuery, opts)
				if err != nil {
					t.Fatalf("split=%d: late attach to recovered session: %v", split, err)
				}
				if got := r.LiveSessions(); got != 1 {
					t.Fatalf("split=%d: late attach created a session (%d live), want to share the recovered one", split, got)
				}
				twin, err := r.SubscribeStream(liveBidQuery, exclOpts)
				if err != nil {
					t.Fatal(err)
				}
				lateFinal, err := late.Close()
				if err != nil {
					t.Fatal(err)
				}
				lateRows := collectStream(late, lateFinal)
				twinFinal, err := twin.Close()
				if err != nil {
					t.Fatal(err)
				}
				twinRows := collectStream(twin, twinFinal)

				lateStr := tvr.FormatStreamTable(late.Schema(), lateRows)
				twinStr := tvr.FormatStreamTable(twin.Schema(), twinRows)
				if lateStr != twinStr {
					t.Fatalf("split=%d: late attacher to recovered session differs from dedicated twin:\nlate:\n%s\ntwin:\n%s",
						split, truncate(lateStr), truncate(twinStr))
				}
				if lateStr != wantStr {
					t.Fatalf("split=%d: recovered output differs from uninterrupted replay:\ngot:\n%s\nwant:\n%s",
						split, truncate(lateStr), truncate(wantStr))
				}
			}
		})
	}
}

// TestWALRecoveryWithoutSnapshot: a crash before the first snapshot ever
// completes still loses nothing — the log alone carries the registration
// and every committed batch.
func TestWALRecoveryWithoutSnapshot(t *testing.T) {
	g := liveData(t)
	dir := t.TempDir()
	e, _ := walBidEngine(t, dir)
	if err := e.AppendLog("Bid", g.Bids[:300]); err != nil {
		t.Fatal(err)
	}
	crashSeq := e.WALSeq()

	r, info := recoverEngine(t, "", dir)
	if info.LastSeq != crashSeq {
		t.Fatalf("replayed through %d, crashed at %d", info.LastSeq, crashSeq)
	}
	log, err := r.Log("Bid")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 300 {
		t.Fatalf("recovered %d events, want 300", len(log))
	}
	got, err := r.QueryStream(`SELECT auction, price FROM Bid WHERE price > 900`)
	if err != nil {
		t.Fatal(err)
	}
	wantEngine := newBidEngine(t)
	if err := wantEngine.AppendLog("Bid", g.Bids[:300]); err != nil {
		t.Fatal(err)
	}
	want, err := wantEngine.QueryStream(`SELECT auction, price FROM Bid WHERE price > 900`)
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := tvr.FormatStreamTable(got.Schema, got.Rows), tvr.FormatStreamTable(want.Schema, want.Rows); gs != ws {
		t.Fatalf("log-only recovery diverges:\ngot:\n%s\nwant:\n%s", truncate(gs), truncate(ws))
	}
}

// TestWALRecoveryFreshRelation: a relation registered AFTER the last
// snapshot (plus its data) is rebuilt from the log's register record.
func TestWALRecoveryFreshRelation(t *testing.T) {
	g := liveData(t)
	dataDir := t.TempDir()
	walDir := filepath.Join(dataDir, "wal")
	ckptPath := filepath.Join(dataDir, "checkpoint.ckpt")
	e, _ := walBidEngine(t, walDir)
	if err := e.AppendLog("Bid", g.Bids[:100]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.CheckpointFile(ckptPath); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot: a brand-new relation and rows into it.
	if err := e.RegisterTable("Extra", liveBidSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendLog("Extra", g.Bids[100:140]); err != nil {
		t.Fatal(err)
	}

	r, _ := recoverEngine(t, ckptPath, walDir)
	log, err := r.Log("Extra")
	if err != nil {
		t.Fatalf("relation registered after the snapshot did not survive: %v", err)
	}
	if len(log) != 40 {
		t.Fatalf("recovered %d Extra events, want 40", len(log))
	}
	// And it is a table, not a stream: re-registering must collide.
	if err := r.RegisterTable("Extra", liveBidSchema(t)); err == nil {
		t.Fatal("recovered engine re-registered Extra")
	}
}

// TestWALReplayRefusedWhenAttached: replaying into an engine already
// logging would re-log every replayed record; the engine must refuse.
func TestWALReplayRefusedWhenAttached(t *testing.T) {
	dir := t.TempDir()
	e, _ := walBidEngine(t, dir)
	if err := e.Insert("Bid", 0, bidRow(1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	_, err := wal.Replay(dir, e.ReplayWALRecord)
	if err == nil {
		t.Fatal("replay into an attached engine succeeded")
	}
}

// liveBidSchema returns the Bid schema used by the live helpers.
func liveBidSchema(t *testing.T) *types.Schema {
	t.Helper()
	e := newBidEngine(t)
	rel, err := e.Resolve("Bid")
	if err != nil {
		t.Fatal(err)
	}
	return rel.Schema
}

// bidRow builds one full-schema Bid row (auction, bidder, price, dateTime).
func bidRow(auction, price int64, at types.Time) types.Row {
	return types.Row{types.NewInt(auction), types.NewInt(1), types.NewInt(price), types.NewTimestamp(at)}
}
