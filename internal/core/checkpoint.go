package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/tvr"
	"repro/internal/types"
)

// Durable engine checkpoints: CheckpointAll snapshots the catalog (schemas +
// recorded changelogs + monotonicity cursors) and every shareable resident
// standing-query pipeline in one consistent stream; RestoreAll rebuilds a
// fresh engine to exactly that commit point, with every restored pipeline
// resuming where it stopped — no history rescan. Both run under the live
// manager's ordering lock, the same lock every Publish commits under, so the
// snapshot can never observe a half-routed change.

// saveAll and loadAll are the single definitions of the checkpoint stream's
// section order (WAL position + catalog, then manager + sessions); every
// public entry point delegates here so the writer and both readers cannot
// drift.
func (e *Engine) saveAll(enc *checkpoint.Encoder) error {
	return e.saveAllSeq(enc, nil)
}

// saveAllSeq is saveAll with the snapshot's WAL position reported back to
// the caller (when seqOut is non-nil): the sequence number the snapshot
// covers through, captured under the same locks as the state itself, which
// is exactly how far the write-ahead log may be truncated once the snapshot
// is durable.
func (e *Engine) saveAllSeq(enc *checkpoint.Encoder, seqOut *uint64) error {
	return e.live.CheckpointAll(enc, func(enc *checkpoint.Encoder) error {
		return e.saveCatalog(enc, seqOut)
	})
}

func (e *Engine) loadAll(dec *checkpoint.Decoder) error {
	if err := e.loadCatalog(dec); err != nil {
		return err
	}
	return e.live.RestoreAll(dec, e.restoreSessionDriver)
}

// CheckpointAll writes the engine's full durable state to w.
func (e *Engine) CheckpointAll(w io.Writer) error {
	enc := checkpoint.NewEncoder(w)
	if err := e.saveAll(enc); err != nil {
		return err
	}
	return enc.Close()
}

// CheckpointFile writes the engine checkpoint to path with a crash-safe
// atomic swap (temp file + fsync + rename + directory fsync), returning the
// encoded size and the WAL sequence number the snapshot covers through —
// once this call returns, the log may be truncated through that sequence.
func (e *Engine) CheckpointFile(path string) (int64, uint64, error) {
	t0 := time.Now()
	var seq uint64
	n, err := checkpoint.WriteFileAtomicFS(e.fs, path, func(enc *checkpoint.Encoder) error {
		return e.saveAllSeq(enc, &seq)
	})
	e.metrics.noteCheckpoint(n, time.Since(t0), err)
	if err != nil {
		return 0, 0, err
	}
	return n, seq, nil
}

// RestoreAll rebuilds the engine from a checkpoint stream. The engine must
// be empty (no relations registered, no live sessions): restore is a
// process-startup operation, not a merge.
func (e *Engine) RestoreAll(r io.Reader) error {
	dec, err := checkpoint.NewDecoder(r)
	if err != nil {
		return err
	}
	if err := e.loadAll(dec); err != nil {
		return err
	}
	return dec.Close()
}

// RestoreFile is RestoreAll over a checkpoint file written by CheckpointFile.
func (e *Engine) RestoreFile(path string) error {
	return checkpoint.ReadFileFS(e.fs, path, e.loadAll)
}

// saveCatalog serializes the engine's WAL position and every registered
// relation: schema, recorded changelog, and the ptime/watermark
// monotonicity cursors. Called by the live manager under its ordering lock,
// so the WAL position, the catalog, and the session states all describe the
// same commit point — which is what lets restore skip replayed WAL records
// by sequence number alone.
func (e *Engine) saveCatalog(enc *checkpoint.Encoder, seqOut *uint64) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	enc.Section("core.wal")
	enc.Uvarint(e.walSeq)
	if seqOut != nil {
		*seqOut = e.walSeq
	}
	enc.Section("core.catalog")
	keys := make([]string, 0, len(e.rels))
	for k := range e.rels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		rel := e.rels[k]
		enc.String(rel.meta.Name)
		enc.Bool(rel.meta.Unbounded)
		saveSchema(enc, rel.meta.Schema)
		enc.Time(rel.lastPtime)
		enc.Time(rel.lastWM)
		tvr.SaveChangelog(enc, rel.log)
	}
	return enc.Err()
}

// loadCatalog rebuilds the catalog into an empty engine.
func (e *Engine) loadCatalog(dec *checkpoint.Decoder) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.rels) > 0 {
		return fmt.Errorf("core: RestoreAll needs an empty engine (have %d relations)", len(e.rels))
	}
	if err := dec.Expect("core.wal"); err != nil {
		return err
	}
	e.walSeq = dec.Uvarint()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := dec.Expect("core.catalog"); err != nil {
		return err
	}
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		name := dec.String()
		unbounded := dec.Bool()
		schema, err := loadSchema(dec)
		if err != nil {
			return err
		}
		lastPtime := dec.Time()
		lastWM := dec.Time()
		log, err := tvr.LoadChangelog(dec)
		if err != nil {
			return err
		}
		e.rels[strings.ToLower(name)] = &relation{
			meta:      plan.Relation{Name: name, Schema: schema, Unbounded: unbounded},
			log:       log,
			lastPtime: lastPtime,
			lastWM:    lastWM,
		}
	}
	return dec.Err()
}

// restoreSessionDriver is the live.RestoreDriver callback: re-plan the
// checkpointed SQL against the (already restored) catalog and rehydrate the
// driver state into the freshly compiled pipeline.
func (e *Engine) restoreSessionDriver(sql string, mode live.Mode, dec *checkpoint.Decoder) (exec.Driver, live.Config, error) {
	pq, err := e.plan(sql)
	if err != nil {
		return nil, live.Config{}, fmt.Errorf("core: re-planning checkpointed query: %w", err)
	}
	d, err := exec.LoadDriver(dec, pq)
	if err != nil {
		return nil, live.Config{}, err
	}
	return d, live.Config{
		Name:     sql,
		Mode:     mode,
		Schema:   pq.Root.Schema(),
		EmitKeys: pq.EmitKeyIdxs,
		Sources:  scanNames(pq.Root),
	}, nil
}

// ---- schema and log wire helpers ----

// kindNames maps type kinds to stable wire names (the in-memory enum values
// are not part of the format).
var kindNames = map[types.Kind]string{
	types.KindBool:      "BOOLEAN",
	types.KindInt64:     "BIGINT",
	types.KindFloat64:   "DOUBLE",
	types.KindString:    "VARCHAR",
	types.KindTimestamp: "TIMESTAMP",
	types.KindInterval:  "INTERVAL",
}

func saveSchema(enc *checkpoint.Encoder, sch *types.Schema) {
	enc.Uvarint(uint64(sch.Len()))
	for _, c := range sch.Cols {
		enc.String(c.Name)
		enc.String(kindNames[c.Kind])
		enc.Bool(c.EventTime)
		enc.Duration(c.WmOffset)
		enc.Bool(c.Windowed)
	}
}

func loadSchema(dec *checkpoint.Decoder) (*types.Schema, error) {
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, err
	}
	cols := make([]types.Column, 0, checkpoint.CapHint(uint64(n)))
	for i := 0; i < n; i++ {
		name := dec.String()
		kindName := dec.String()
		eventTime := dec.Bool()
		wmOffset := dec.Duration()
		windowed := dec.Bool()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		var kind types.Kind
		found := false
		for k, kn := range kindNames {
			if kn == kindName {
				kind, found = k, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: unknown column kind %q in checkpoint", kindName)
		}
		cols = append(cols, types.Column{Name: name, Kind: kind, EventTime: eventTime, WmOffset: wmOffset, Windowed: windowed})
	}
	return types.NewSchema(cols...), nil
}
