// Package core is the public face of the streaming SQL engine: a catalog of
// time-varying relations (streams and tables) plus query entry points that
// parse, plan, optimize, and execute the paper's SQL dialect.
//
// The engine models processing time explicitly: every ingested change
// carries a ptime, and queries are evaluated either as a table snapshot "as
// of" a processing time (the classic point-in-time rendering) or as a stream
// (the changelog rendering with undo/ptime/ver metadata, Extension 4). This
// determinism is what lets the test suite regenerate the paper's listings
// byte for byte.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/exec"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sqlparser"
	"repro/internal/tvr"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Engine is a catalog of registered relations and the query interface over
// them. It is safe for concurrent use.
//
// Besides the one-shot query paths, the engine hosts standing queries: a
// subscription compiles and plans its SQL once, replays the recorded
// history, and from then on receives every ingested change incrementally
// (see SubscribeStream/SubscribeTable). All catalog mutations funnel through
// the live manager's ordering lock so standing queries observe changes in
// commit order.
type Engine struct {
	mu      sync.RWMutex
	rels    map[string]*relation
	cfg     plan.Config
	live    *live.Manager
	gateMin int // small-input gate override; -1 = exec default
	shards  int // live fan-out shard workers; 0 = serial (see WithShards)

	// wal, when attached, receives every committed change before it is
	// applied or fanned out; walSeq is the last committed sequence number
	// (both guarded by mu — see wal.go for the ordering argument).
	wal    CommitLog
	walSeq uint64

	// fs is the filesystem checkpoints are written through (vfs.Default
	// unless WithFS overrides it for fault-injection tests).
	fs vfs.FS

	// Degraded read-only mode (see degraded.go): degraded holds the cause
	// when ingest is refused, walFails counts consecutive commit-log
	// failures, degradeAfter is the trip threshold (0 = default). All
	// guarded by mu.
	degraded     error
	walFails     int
	degradeAfter int

	// Observability (see obs.go): all nil/zero without WithObs, costing
	// the hot paths only nil checks. tracer hands out a commit-path span
	// per Publish/Heartbeat; slowCommit is its log threshold.
	obsReg     *obs.Registry
	metrics    *engineMetrics
	tracer     *obs.CommitTracer
	slowCommit time.Duration
	traceLog   *slog.Logger
}

type relation struct {
	meta      plan.Relation
	log       tvr.Changelog
	lastPtime types.Time
	lastWM    types.Time
}

// Option configures an Engine.
type Option func(*Engine)

// WithUnboundedGroupBy disables the Extension 2 validation (used by
// experiments that demonstrate unbounded state growth).
func WithUnboundedGroupBy() Option {
	return func(e *Engine) { e.cfg.AllowUnboundedGroupBy = true }
}

// WithSmallInputGate overrides the partitioned executor's small-input cost
// gate: one-shot parallel queries run serially when the scanned relations
// carry fewer than parts*minPerPart recorded events (the fan-out/merge
// overhead would dominate). Pass 0 to always run partitioned. Without this
// option the executor's default threshold (one round per partition) applies.
func WithSmallInputGate(minPerPart int) Option {
	return func(e *Engine) { e.gateMin = minPerPart }
}

// WithShards enables the sharded ingest subsystem for standing queries: n
// shard workers fan committed changes out to resident sessions off the
// committing goroutine, each session pinned to one shard, per-shard strictly
// in commit order (delta sequences stay byte-identical to the serial
// fan-out). 0 (the default) keeps the serial fan-out on the publisher's
// goroutine. One-shot queries and checkpoints quiesce the shards first, so
// read-your-writes is preserved either way.
func WithShards(n int) Option {
	return func(e *Engine) { e.shards = n }
}

// WithFS routes the engine's checkpoint I/O through fsys instead of the
// real filesystem — the fault-injection seam (the WAL has its own FS in
// wal.Options; this covers CheckpointFile/RestoreFile).
func WithFS(fsys vfs.FS) Option {
	return func(e *Engine) {
		if fsys != nil {
			e.fs = fsys
		}
	}
}

// NewEngine creates an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{rels: make(map[string]*relation), gateMin: -1, fs: vfs.Default,
		slowCommit: obs.DefaultSlowCommit}
	for _, o := range opts {
		o(e)
	}
	if e.obsReg != nil {
		e.metrics = newEngineMetrics(e.obsReg)
		e.tracer = obs.NewCommitTracer(e.obsReg, e.slowCommit, e.traceLog)
	}
	e.live = live.NewManagerWith(live.Options{Shards: e.shards, Obs: e.obsReg})
	return e
}

// Quiesce blocks until every change acknowledged before the call has been
// applied to all standing queries — the read-your-writes barrier when the
// sharded fan-out is enabled. A no-op on a serial-fan-out engine.
func (e *Engine) Quiesce() { e.live.Quiesce() }

// Close drains and stops the sharded fan-out workers (a no-op on a
// serial-fan-out engine). Call after publishing has stopped; standing
// subscriptions are not canceled.
func (e *Engine) Close() { e.live.Close() }

// RegisterStream registers an unbounded relation (a stream). Columns marked
// EventTime carry the stream's watermark.
func (e *Engine) RegisterStream(name string, schema *types.Schema) error {
	return e.register(name, schema, true)
}

// RegisterTable registers a bounded relation (a classic table). At query
// time a table is considered complete: a final watermark is asserted when
// its recorded changelog is exhausted.
func (e *Engine) RegisterTable(name string, schema *types.Schema) error {
	return e.register(name, schema, false)
}

func (e *Engine) register(name string, schema *types.Schema, unbounded bool) error {
	if name == "" || schema == nil || schema.Len() == 0 {
		return fmt.Errorf("core: relation needs a name and a non-empty schema")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.degradedLocked(); err != nil {
		return err
	}
	key := strings.ToLower(name)
	if _, dup := e.rels[key]; dup {
		return fmt.Errorf("core: relation %q already registered", name)
	}
	// Log before mutating: a relation registered after the last snapshot
	// must reappear on replay, or the WAL tail's publishes to it would have
	// nowhere to land.
	err := e.walAppendLocked(func(enc *checkpoint.Encoder) error {
		enc.String(walRecRegister)
		enc.String(name)
		enc.Bool(unbounded)
		saveSchema(enc, schema)
		return enc.Err()
	})
	if err != nil {
		return err
	}
	e.rels[key] = &relation{
		meta:      plan.Relation{Name: name, Schema: schema.Clone(), Unbounded: unbounded},
		lastPtime: types.MinTime,
		lastWM:    types.MinTime,
	}
	return nil
}

// Insert appends an INSERT change to the relation's changelog at ptime.
func (e *Engine) Insert(name string, ptime types.Time, row types.Row) error {
	return e.append(name, tvr.InsertEvent(ptime, row))
}

// Delete appends a DELETE (retraction) change at ptime.
func (e *Engine) Delete(name string, ptime types.Time, row types.Row) error {
	return e.append(name, tvr.DeleteEvent(ptime, row))
}

// AdvanceWatermark records a watermark observation for the relation at the
// given processing time.
func (e *Engine) AdvanceWatermark(name string, ptime types.Time, wm types.Time) error {
	return e.append(name, tvr.WatermarkEvent(ptime, wm))
}

// AppendLog appends a pre-built changelog to the relation atomically: the
// whole log is validated against the relation's current state under a single
// lock acquisition before any event is applied, so a mid-log validation
// error leaves the relation untouched rather than half-appended.
func (e *Engine) AppendLog(name string, log tvr.Changelog) error {
	return e.publish(name, log)
}

// append records one change and routes it to matching standing queries. The
// live manager's ordering lock brackets the commit and the fan-out, so every
// subscription observes changes in commit order.
func (e *Engine) append(name string, ev tvr.Event) error {
	return e.publish(name, tvr.Changelog{ev})
}

// publish commits a changelog through the live manager's ordering lock,
// carrying a commit-path span when tracing is enabled: validate and WAL
// stages are timed inside applyLog, sequence/enqueue by the manager,
// apply/render/deliver inside each session. The span finalizes — recording
// histograms and possibly the slow-commit log line — when the last
// participant (the publisher, or the last shard worker) releases it.
func (e *Engine) publish(name string, log tvr.Changelog) error {
	span := e.tracer.Begin(name, len(log))
	err := e.live.PublishSpan(func() error { return e.applyLog(name, log, span) }, name, log, span)
	if err == nil {
		e.metrics.notePublish(len(log))
	}
	return err
}

// applyLog validates the whole log against the relation's current cursors,
// write-ahead-logs it, then applies it, all under one catalog lock
// acquisition. The order matters twice over: validation first means the WAL
// only ever records changes that commit (replay cannot trip over a record
// live ingestion rejected), and logging before applying means a WAL failure
// leaves the relation untouched and the batch unrouted — the change is
// refused, not silently volatile.
func (e *Engine) applyLog(name string, log tvr.Changelog, span *obs.CommitSpan) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.degradedLocked(); err != nil {
		return err
	}
	rel, ok := e.rels[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("core: relation %q not registered", name)
	}
	tValidate := time.Time{}
	if span != nil {
		tValidate = time.Now()
	}
	lastPtime, lastWM := rel.lastPtime, rel.lastWM
	for _, ev := range log {
		var err error
		lastPtime, lastWM, err = validateEvent(name, &rel.meta, ev, lastPtime, lastWM)
		if err != nil {
			return err
		}
	}
	span.AddSince(obs.SpanValidate, tValidate)
	tWAL := time.Time{}
	if span != nil {
		tWAL = time.Now()
	}
	err := e.walAppendLocked(func(enc *checkpoint.Encoder) error {
		enc.String(walRecPublish)
		enc.String(rel.meta.Name)
		tvr.SaveChangelog(enc, log)
		return enc.Err()
	})
	if err != nil {
		return err
	}
	span.AddSince(obs.SpanWAL, tWAL)
	rel.lastPtime, rel.lastWM = lastPtime, lastWM
	rel.log = append(rel.log, log...)
	return nil
}

// validateEvent checks one event against the relation schema and the running
// monotonicity cursors, returning the advanced cursors.
func validateEvent(name string, meta *plan.Relation, ev tvr.Event, lastPtime, lastWM types.Time) (types.Time, types.Time, error) {
	if ev.Ptime < lastPtime {
		return 0, 0, fmt.Errorf("core: %s: ptime %s regresses from %s", name, ev.Ptime, lastPtime)
	}
	switch ev.Kind {
	case tvr.Insert, tvr.Delete:
		if len(ev.Row) != meta.Schema.Len() {
			return 0, 0, fmt.Errorf("core: %s: row has %d columns, schema has %d", name, len(ev.Row), meta.Schema.Len())
		}
		for i, c := range meta.Schema.Cols {
			v := ev.Row[i]
			if !v.IsNull() && v.Kind() != c.Kind {
				if v.Kind().IsNumeric() && c.Kind.IsNumeric() {
					continue
				}
				return 0, 0, fmt.Errorf("core: %s: column %s expects %s, got %s", name, c.Name, c.Kind, v.Kind())
			}
		}
	case tvr.Watermark:
		if ev.Wm < lastWM {
			return 0, 0, fmt.Errorf("core: %s: watermark %s regresses from %s", name, ev.Wm, lastWM)
		}
		lastWM = ev.Wm
	}
	return ev.Ptime, lastWM, nil
}

// Resolve implements plan.Catalog.
func (e *Engine) Resolve(name string) (*plan.Relation, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rel, ok := e.rels[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: relation %q not found", name)
	}
	meta := rel.meta
	return &meta, nil
}

// Log returns a copy of the relation's recorded changelog.
func (e *Engine) Log(name string) (tvr.Changelog, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rel, ok := e.rels[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("core: relation %q not found", name)
	}
	out := make(tvr.Changelog, len(rel.log))
	copy(out, rel.log)
	return out, nil
}

// TableResult is the table rendering of a query: the output relation's rows
// at the evaluation time, in presentation order.
type TableResult struct {
	Schema *types.Schema
	Rows   []types.Row
	Stats  exec.Stats
}

// Format renders the result as the paper's bordered listing tables.
func (r *TableResult) Format() string {
	return tvr.FormatRelationTable(r.Schema, r.Rows)
}

// SortedBy returns a copy of the rows sorted by the given columns; the
// listings harness uses this where the paper presents windows in order.
func (r *TableResult) SortedBy(cols ...int) []types.Row {
	rows := make([]types.Row, len(r.Rows))
	copy(rows, r.Rows)
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			a, b := rows[i][c], rows[j][c]
			if a.IsNull() || b.IsNull() {
				continue
			}
			cmp, err := a.Compare(b)
			if err != nil || cmp == 0 {
				continue
			}
			return cmp < 0
		}
		return false
	})
	return rows
}

// StreamResult is the stream rendering of a query: the changelog with
// undo/ptime/ver metadata (Extension 4).
type StreamResult struct {
	Schema *types.Schema
	Rows   []tvr.StreamRow
	Stats  exec.Stats
}

// Format renders the stream as the paper's EMIT STREAM listings.
func (r *StreamResult) Format() string {
	return tvr.FormatStreamTable(r.Schema, r.Rows)
}

// QueryTable evaluates the query as a classic point-in-time table at
// processing time `at` (only input changes with ptime <= at are visible).
func (e *Engine) QueryTable(sql string, at types.Time) (*TableResult, error) {
	res, stats, err := e.run(sql, at)
	if err != nil {
		return nil, err
	}
	return &TableResult{Schema: res.Schema, Rows: res.TableRows(), Stats: stats}, nil
}

// QueryStream evaluates the query over the full recorded input and returns
// the stream rendering of its output TVR.
func (e *Engine) QueryStream(sql string) (*StreamResult, error) {
	res, stats, err := e.run(sql, types.MaxTime)
	if err != nil {
		return nil, err
	}
	return &StreamResult{Schema: res.Schema, Rows: res.StreamRows(), Stats: stats}, nil
}

// QueryStreamAt evaluates the stream rendering with input truncated at the
// given processing time.
func (e *Engine) QueryStreamAt(sql string, at types.Time) (*StreamResult, error) {
	res, stats, err := e.run(sql, at)
	if err != nil {
		return nil, err
	}
	return &StreamResult{Schema: res.Schema, Rows: res.StreamRows(), Stats: stats}, nil
}

// QueryTableParallel is QueryTable executed on a key-partitioned parallel
// pipeline with the given number of partitions. Results are byte-identical
// to the serial rendering; plans with no valid hash partitioning fall back
// to serial execution (Stats.Partitions reports which path ran).
func (e *Engine) QueryTableParallel(sql string, at types.Time, parts int) (*TableResult, error) {
	res, stats, err := e.runWith(sql, at, parts)
	if err != nil {
		return nil, err
	}
	return &TableResult{Schema: res.Schema, Rows: res.TableRows(), Stats: stats}, nil
}

// QueryStreamParallel is QueryStream on the partitioned pipeline.
func (e *Engine) QueryStreamParallel(sql string, parts int) (*StreamResult, error) {
	res, stats, err := e.runWith(sql, types.MaxTime, parts)
	if err != nil {
		return nil, err
	}
	return &StreamResult{Schema: res.Schema, Rows: res.StreamRows(), Stats: stats}, nil
}

// QueryStreamAtParallel is QueryStreamAt on the partitioned pipeline.
func (e *Engine) QueryStreamAtParallel(sql string, at types.Time, parts int) (*StreamResult, error) {
	res, stats, err := e.runWith(sql, at, parts)
	if err != nil {
		return nil, err
	}
	return &StreamResult{Schema: res.Schema, Rows: res.StreamRows(), Stats: stats}, nil
}

// ExplainPartitioning reports how the query would be routed across
// partitions: the per-scan hash columns, "round-robin" for stateless plans,
// or "serial (<reason>)" when the plan cannot be partitioned.
func (e *Engine) ExplainPartitioning(sql string) (string, error) {
	pq, err := e.plan(sql)
	if err != nil {
		return "", err
	}
	part, err := plan.DerivePartitioning(pq)
	if err != nil {
		return fmt.Sprintf("serial (%v)", err), nil
	}
	return part.Describe(), nil
}

// Explain returns the optimized logical plan of the query.
func (e *Engine) Explain(sql string) (string, error) {
	pq, err := e.plan(sql)
	if err != nil {
		return "", err
	}
	return plan.Format(pq.Root), nil
}

func (e *Engine) plan(sql string) (*plan.PlannedQuery, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	pq, err := plan.New(e, e.cfg).Plan(q)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(pq), nil
}

func (e *Engine) run(sql string, at types.Time) (*exec.Result, exec.Stats, error) {
	return e.runWith(sql, at, 1)
}

// runWith plans the query and executes it on the partitioned pipeline when
// parts > 1 and the plan admits a hash partitioning, merging the
// per-partition outputs deterministically; otherwise it runs the serial
// pipeline. Both paths produce byte-identical results. Query latency and
// the chosen execution path feed the engine_queries_* families.
func (e *Engine) runWith(sql string, at types.Time, parts int) (*exec.Result, exec.Stats, error) {
	if e.metrics == nil {
		return e.runWithInner(sql, at, parts)
	}
	t0 := time.Now()
	res, st, err := e.runWithInner(sql, at, parts)
	e.metrics.noteQuery(st.Path, time.Since(t0), err)
	return res, st, err
}

func (e *Engine) runWithInner(sql string, at types.Time, parts int) (*exec.Result, exec.Stats, error) {
	// Read-your-writes: under the sharded fan-out an acknowledged change may
	// still be in a shard queue; one-shot queries read the recorded catalog
	// logs, which the commit already updated, but quiescing first also keeps
	// "query result" and "what subscriptions have seen" at one commit point.
	e.live.Quiesce()
	pq, err := e.plan(sql)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	sources, err := e.sources(pq.Root)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	if parts > 1 {
		// Small-input cost gate, applied before CompilePartitioned: a
		// tiny input cannot amortize the fan-out/merge overhead, so it
		// should not even pay for building the partition chains.
		gate := e.gateMin
		if gate < 0 {
			gate = exec.SmallInputMinPerPartition
		}
		if exec.SmallInput(sources, parts, gate) {
			res, st, err := e.runSerial(pq, sources, at)
			if err == nil {
				// Only claim the gate preempted parallelism when the
				// plan could actually have partitioned; a plan with no
				// valid routing runs serially at any input size.
				if _, derr := plan.DerivePartitioning(pq); derr == nil {
					st.Path = exec.PathSerialSmallInput
				}
			}
			return res, st, err
		}
		pp, perr := exec.CompilePartitioned(pq, parts)
		switch {
		case perr == nil:
			// The size decision is already made; disable the
			// executor's own backstop gate.
			pp.SetSmallInputGate(0)
			res, err := pp.Run(sources, at)
			if err != nil {
				return nil, exec.Stats{}, err
			}
			return res, pp.Stats(), nil
		case !errors.Is(perr, exec.ErrNotPartitionable):
			return nil, exec.Stats{}, perr
		}
		// Not partitionable: fall through to the serial pipeline.
	}
	return e.runSerial(pq, sources, at)
}

func (e *Engine) runSerial(pq *plan.PlannedQuery, sources []exec.Source, at types.Time) (*exec.Result, exec.Stats, error) {
	pipe, err := exec.Compile(pq)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	res, err := pipe.Run(sources, at)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	return res, pipe.Stats(), nil
}

// scanNames lists the distinct (lower-cased, sorted) relations a plan scans.
func scanNames(root plan.Node) []string {
	set := map[string]bool{}
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			set[strings.ToLower(s.Name)] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sources collects the recorded changelog of every relation the plan scans.
func (e *Engine) sources(root plan.Node) ([]exec.Source, error) {
	return e.sourcesByName(scanNames(root))
}

// sourcesByName snapshots the recorded changelogs of the named relations.
// The snapshot caps rather than copies: drivers treat source logs as
// immutable (the batched feed hands sub-slices of them straight to operator
// chains), and the three-index slice keeps appends committed after the
// snapshot from aliasing into this view.
func (e *Engine) sourcesByName(names []string) ([]exec.Source, error) {
	var out []exec.Source
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, name := range names {
		rel, ok := e.rels[name]
		if !ok {
			return nil, fmt.Errorf("core: relation %q not found", name)
		}
		out = append(out, exec.Source{Name: name, Log: rel.log[:len(rel.log):len(rel.log)]})
	}
	return out, nil
}
