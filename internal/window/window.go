// Package window implements event-time window assignment: the pure logic
// behind the paper's Tumble and Hop table-valued functions (Extension 3) and
// the Session windows it lists as future work. The execution engine wraps
// these assignments in TVF operators; the CQL baseline reuses them for its
// RANGE/SLIDE windows.
package window

import (
	"fmt"

	"repro/internal/types"
)

// Interval is one event-time window [Start, End).
type Interval struct {
	Start types.Time
	End   types.Time
}

// Contains reports whether t falls inside the window.
func (w Interval) Contains(t types.Time) bool { return t >= w.Start && t < w.End }

// String renders the window as "[start, end)".
func (w Interval) String() string { return fmt.Sprintf("[%s, %s)", w.Start, w.End) }

// Tumble assigns t to its unique tumbling window of width dur, with windows
// anchored at offset past the epoch. Tumbling ("fixed") windows partition
// event time into equally spaced disjoint covering intervals, so every
// timestamp belongs to exactly one window.
func Tumble(t types.Time, dur, offset types.Duration) Interval {
	if dur <= 0 {
		return Interval{}
	}
	d := int64(dur)
	rel := int64(t) - int64(offset)
	start := rel - mod(rel, d)
	return Interval{
		Start: types.Time(start + int64(offset)),
		End:   types.Time(start + int64(offset) + d),
	}
}

// Hop assigns t to every hopping window of width dur whose starts are spaced
// hop apart (anchored at offset). With hop < dur windows overlap and a
// timestamp belongs to ceil(dur/hop) windows; with hop > dur there are gaps
// and a timestamp may belong to no window. Windows are returned in
// increasing-start order.
func Hop(t types.Time, dur, hop, offset types.Duration) []Interval {
	if dur <= 0 || hop <= 0 {
		return nil
	}
	var out []Interval
	d, h := int64(dur), int64(hop)
	rel := int64(t) - int64(offset)
	// The last window that could contain t starts at the hop boundary at
	// or before t; earlier candidates start back to t-dur (exclusive).
	lastStart := rel - mod(rel, h)
	for start := lastStart; start > rel-d; start -= h {
		w := Interval{
			Start: types.Time(start + int64(offset)),
			End:   types.Time(start + int64(offset) + d),
		}
		out = append(out, w)
	}
	// Reverse into increasing-start order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// mod is Euclidean modulo: the result is always in [0, m) even for negative
// values, so windows are aligned identically on both sides of the epoch.
func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// MergeSessions computes session windows (periods of contiguous activity
// separated by gaps of at least `gap`) from a set of event timestamps. Each
// input timestamp initially forms the proto-session [t, t+gap); overlapping
// or touching proto-sessions merge transitively. The result is the minimal
// set of disjoint session intervals, in increasing order. Timestamps need
// not be sorted.
func MergeSessions(ts []types.Time, gap types.Duration) []Interval {
	if len(ts) == 0 || gap <= 0 {
		return nil
	}
	sorted := make([]types.Time, len(ts))
	copy(sorted, ts)
	insertionSort(sorted)
	var out []Interval
	cur := Interval{Start: sorted[0], End: sorted[0].Add(gap)}
	for _, t := range sorted[1:] {
		if t <= cur.End {
			end := t.Add(gap)
			if end > cur.End {
				cur.End = end
			}
			continue
		}
		out = append(out, cur)
		cur = Interval{Start: t, End: t.Add(gap)}
	}
	return append(out, cur)
}

// AssignSession returns the merged session interval containing t, given all
// timestamps of the key (t must be among them).
func AssignSession(t types.Time, all []types.Time, gap types.Duration) (Interval, bool) {
	for _, w := range MergeSessions(all, gap) {
		if w.Contains(t) {
			return w, true
		}
	}
	return Interval{}, false
}

func insertionSort(a []types.Time) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
