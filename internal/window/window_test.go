package window

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestTumblePaperExample(t *testing.T) {
	// Listing 5: bidtime 8:07 with 10-minute windows -> [8:00, 8:10).
	cases := []struct {
		t            types.Time
		wantS, wantE types.Time
	}{
		{types.ClockTime(8, 7), types.ClockTime(8, 0), types.ClockTime(8, 10)},
		{types.ClockTime(8, 11), types.ClockTime(8, 10), types.ClockTime(8, 20)},
		{types.ClockTime(8, 5), types.ClockTime(8, 0), types.ClockTime(8, 10)},
		{types.ClockTime(8, 0), types.ClockTime(8, 0), types.ClockTime(8, 10)},
		{types.ClockTime(8, 10), types.ClockTime(8, 10), types.ClockTime(8, 20)},
	}
	for _, c := range cases {
		w := Tumble(c.t, 10*types.Minute, 0)
		if w.Start != c.wantS || w.End != c.wantE {
			t.Errorf("Tumble(%v) = %v, want [%v,%v)", c.t, w, c.wantS, c.wantE)
		}
	}
}

func TestTumbleOffset(t *testing.T) {
	// Offset shifts window boundaries.
	w := Tumble(types.ClockTime(8, 7), 10*types.Minute, 3*types.Minute)
	if w.Start != types.ClockTime(8, 3) || w.End != types.ClockTime(8, 13) {
		t.Errorf("with offset: %v", w)
	}
	// Degenerate duration.
	if w := Tumble(0, 0, 0); w != (Interval{}) {
		t.Errorf("zero duration should be empty, got %v", w)
	}
}

func TestTumbleNegativeTimes(t *testing.T) {
	w := Tumble(types.Time(-1), 10*types.Minute, 0)
	if w.Start != types.Time(-int64(10*types.Minute)) || w.End != 0 {
		t.Errorf("negative tumble: %v", w)
	}
	if !w.Contains(types.Time(-1)) {
		t.Error("window should contain its input")
	}
}

func TestHopPaperExample(t *testing.T) {
	// Listing 7: dur 10m, hop 5m. Bid at 8:07 -> [8:00,8:10) and [8:05,8:15).
	ws := Hop(types.ClockTime(8, 7), 10*types.Minute, 5*types.Minute, 0)
	if len(ws) != 2 {
		t.Fatalf("len=%d (%v)", len(ws), ws)
	}
	if ws[0].Start != types.ClockTime(8, 0) || ws[1].Start != types.ClockTime(8, 5) {
		t.Errorf("windows = %v", ws)
	}
	// Bid at 8:17 -> [8:10,8:20) and [8:15,8:25).
	ws = Hop(types.ClockTime(8, 17), 10*types.Minute, 5*types.Minute, 0)
	if len(ws) != 2 || ws[0].Start != types.ClockTime(8, 10) || ws[1].Start != types.ClockTime(8, 15) {
		t.Errorf("8:17 windows = %v", ws)
	}
}

func TestHopGaps(t *testing.T) {
	// hop > dur leaves gaps: window [0,1m) then [5m,6m) etc.
	if ws := Hop(types.ClockTime(0, 3), types.Minute, 5*types.Minute, 0); ws != nil {
		t.Errorf("expected gap (no windows), got %v", ws)
	}
	ws := Hop(types.ClockTime(0, 5), types.Minute, 5*types.Minute, 0)
	if len(ws) != 1 || ws[0].Start != types.ClockTime(0, 5) {
		t.Errorf("ws = %v", ws)
	}
	if Hop(0, 0, types.Minute, 0) != nil || Hop(0, types.Minute, 0, 0) != nil {
		t.Error("degenerate params should return nil")
	}
}

func TestHopEqualsTumbleWhenHopEqualsDur(t *testing.T) {
	f := func(tt int64) bool {
		tm := types.Time(tt % int64(types.Day)) // may be negative; Tumble handles it
		ws := Hop(tm, 10*types.Minute, 10*types.Minute, 0)
		w := Tumble(tm, 10*types.Minute, 0)
		return len(ws) == 1 && ws[0] == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestQuickTumbleInvariants(t *testing.T) {
	f := func(tt, durM, offM int64) bool {
		dur := types.Duration(abs64(durM)%120+1) * types.Minute
		off := types.Duration(abs64(offM)%60) * types.Minute
		tm := types.Time(tt % (2 * int64(types.Day)))
		w := Tumble(tm, dur, off)
		// Window contains its timestamp, has the right width, and is
		// aligned to the offset grid.
		if !w.Contains(tm) {
			return false
		}
		if types.Duration(w.End-w.Start) != dur {
			return false
		}
		return (int64(w.Start)-int64(off))%int64(dur) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickHopInvariants(t *testing.T) {
	f := func(tt, durM, hopM int64) bool {
		dur := types.Duration(abs64(durM)%60+1) * types.Minute
		hop := types.Duration(abs64(hopM)%20+1) * types.Minute
		tm := types.Time(abs64(tt) % int64(types.Day))
		ws := Hop(tm, dur, hop, 0)
		// Every returned window contains t; count matches coverage math.
		want := 0
		for s := int64(tm) - int64(tm)%int64(hop); s > int64(tm)-int64(dur); s -= int64(hop) {
			want++
		}
		if len(ws) != want {
			return false
		}
		for i, w := range ws {
			if !w.Contains(tm) || types.Duration(w.End-w.Start) != dur {
				return false
			}
			if i > 0 && types.Duration(w.Start-ws[i-1].Start) != hop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMergeSessions(t *testing.T) {
	gap := 5 * types.Minute
	ts := []types.Time{
		types.ClockTime(8, 0),
		types.ClockTime(8, 3), // merges with 8:00 (within 5m)
		types.ClockTime(8, 20),
	}
	ws := MergeSessions(ts, gap)
	if len(ws) != 2 {
		t.Fatalf("sessions = %v", ws)
	}
	if ws[0].Start != types.ClockTime(8, 0) || ws[0].End != types.ClockTime(8, 8) {
		t.Errorf("first session = %v", ws[0])
	}
	if ws[1].Start != types.ClockTime(8, 20) || ws[1].End != types.ClockTime(8, 25) {
		t.Errorf("second session = %v", ws[1])
	}
	// Unsorted input gives the same result.
	ws2 := MergeSessions([]types.Time{ts[2], ts[0], ts[1]}, gap)
	if len(ws2) != 2 || ws2[0] != ws[0] || ws2[1] != ws[1] {
		t.Errorf("unsorted sessions = %v", ws2)
	}
	if MergeSessions(nil, gap) != nil || MergeSessions(ts, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestAssignSession(t *testing.T) {
	gap := 5 * types.Minute
	all := []types.Time{types.ClockTime(8, 0), types.ClockTime(8, 3)}
	w, ok := AssignSession(types.ClockTime(8, 3), all, gap)
	if !ok || w.Start != types.ClockTime(8, 0) || w.End != types.ClockTime(8, 8) {
		t.Errorf("AssignSession = %v ok=%v", w, ok)
	}
	if _, ok := AssignSession(types.ClockTime(9, 0), all, gap); ok {
		t.Error("timestamp outside sessions should not be found")
	}
}

func TestQuickSessionsDisjointAndCovering(t *testing.T) {
	f := func(raw []int64, gapM int64) bool {
		gap := types.Duration(abs64(gapM)%30+1) * types.Minute
		ts := make([]types.Time, 0, len(raw))
		for _, r := range raw {
			ts = append(ts, types.Time(abs64(r)%int64(types.Day)))
		}
		ws := MergeSessions(ts, gap)
		// Disjoint, ordered, separated by at least gap.
		for i := 1; i < len(ws); i++ {
			if ws[i].Start < ws[i-1].End {
				return false
			}
		}
		// Every timestamp covered by exactly one session.
		for _, t := range ts {
			n := 0
			for _, w := range ws {
				if w.Contains(t) {
					n++
				}
			}
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntervalString(t *testing.T) {
	w := Interval{Start: types.ClockTime(8, 0), End: types.ClockTime(8, 10)}
	if w.String() != "[8:00, 8:10)" {
		t.Errorf("String = %q", w.String())
	}
}
