package plan

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// This file derives the metadata for key-partitioned parallel execution: a
// hash-routing assignment per scan under which the plan can run as N
// per-partition operator chains whose merged output is identical to serial
// execution.
//
// The analysis rests on one invariant: rows that can ever meet in a stateful
// operator's *partition-resident* state (the same aggregation group, the same
// join-key bucket, the same DISTINCT row) must be routed to the same
// partition. Stateless operators (filter, project, tumble/hop windows) never
// combine rows, so they impose no constraint. A plan with no stateful
// operator at all may be partitioned round-robin.
//
// Bottom-up, each subtree reports:
//
//   - provenance: which output columns are verbatim copies of a scan column
//     (hash routing must be computable at the scan, before any operator runs);
//   - the partition-key slots already fixed by stateful operators below, as
//     the output column positions carrying each key component;
//   - whether the subtree's top already runs in the *serial tail* (see below).
//
// Stateful operators either create a constraint (choosing hashable columns
// from their keys and assigning routing columns to the scans below) or check
// that the inherited constraint is compatible (every key component must be
// functionally preserved by their own grouping/join keys).
//
// When the check fails the plan is not abandoned. Instead the tree is *cut*:
// the maximal partitionable subtrees below the failure keep running in the
// parallel partition chains, and everything above the cut runs serially in
// the merge tail, fed by the deterministic sequence-ordered exchange. Two cut
// flavors exist:
//
//   - A re-keying Aggregate becomes a **two-stage aggregate**: a partial
//     aggregate runs inside every partition chain (accumulating mergeable
//     per-group partial states keyed by the new group columns) and a final
//     aggregate in the serial tail merges the per-partition partials. This is
//     only sound when every aggregate call is exactly mergeable — see
//     twoStageEligible. If the aggregate's input carries no hash constraint
//     at all, its scan is routed by the hash of the *entire* scan row, which
//     keeps each partition's input a true sub-bag of the global bag (a
//     retraction always lands in the partition holding the matching insert),
//     the property MIN/MAX multisets need to stay retraction-correct.
//   - Any other incompatibility (a join whose equi keys cannot align the two
//     sides, DISTINCT above a projection that dropped the key, an operator
//     above an already-serial subtree) cuts the offending child subtrees:
//     their merged output feeds the corresponding serial operator in the
//     tail. A cut subtree with no stateful operator routes round-robin (it
//     has no partition-resident state to co-locate).
//
// Inherently global shapes (session windows over partitioned input, set
// operations, constant relations) still make the plan non-partitionable and
// the caller falls back to serial execution.

// Partitioning is the routing assignment for a partitionable plan.
type Partitioning struct {
	// ScanKeys maps each Scan node of the plan to the ordered column
	// indexes (in the scan's schema) whose values are hashed to route a
	// row. A present entry with a nil slice means the scan is routed
	// round-robin (its subtree holds no partition-resident state).
	// Co-partitioned scans (join sides) list their columns in the same
	// component order so matching rows hash identically.
	ScanKeys map[*Scan][]int
	// RoundRobin is set when the whole plan has no stateful operator: any
	// deterministic routing preserves results, so the driver may balance
	// load freely.
	RoundRobin bool
	// TwoStage marks the Aggregate nodes rewritten into a partial
	// (per-partition) + final (serial tail) pair.
	TwoStage map[*Aggregate]bool

	cuts  map[Node]bool // exchange frontier; empty = whole plan partitioned
	root  Node
	order []*Scan // assignment order, for deterministic Describe output
}

// CutNodes returns the exchange frontier in plan DFS order: the maximal
// subtrees that run inside the partition chains. Each cut feeds one exchange
// port of the serial tail; a cut that is a two-stage Aggregate contributes a
// partial operator per chain and a final operator in the tail. For a fully
// partitionable plan the frontier is the root itself.
func (p *Partitioning) CutNodes() []Node {
	if len(p.cuts) == 0 {
		return []Node{p.root}
	}
	var out []Node
	var walk func(n Node)
	walk = func(n Node) {
		if p.cuts[n] {
			out = append(out, n)
			return // nothing below a cut is another cut
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.root)
	return out
}

// IsTwoStage reports whether the plan uses partial/final aggregation.
func (p *Partitioning) IsTwoStage() bool { return len(p.TwoStage) > 0 }

// Describe renders the routing assignment deterministically.
func (p *Partitioning) Describe() string {
	if p.RoundRobin {
		return "round-robin"
	}
	var sb strings.Builder
	if len(p.TwoStage) > 0 {
		fmt.Fprintf(&sb, "two-stage(%d) ", len(p.TwoStage))
	}
	for i, sc := range p.order {
		if i > 0 {
			sb.WriteString(", ")
		}
		if cols := p.ScanKeys[sc]; cols == nil {
			fmt.Fprintf(&sb, "round-robin(%s)", sc.Name)
		} else {
			fmt.Fprintf(&sb, "hash(%s:%v)", sc.Name, cols)
		}
	}
	return sb.String()
}

// provRef records that an output column is a verbatim copy of a scan column.
type provRef struct {
	scan *Scan
	col  int
	ok   bool
}

// slotRef is one component of the partition key: the output column positions
// currently carrying its value (several after a join; possibly none after a
// projection dropped it, which only matters if a parent still needs it).
type slotRef struct {
	positions []int
}

// partInfo is the bottom-up analysis state for one node's output.
type partInfo struct {
	prov  []provRef
	slots []slotRef // nil while no stateful operator constrained the subtree
	// serial marks a subtree whose top runs in the serial tail (at or
	// above an exchange cut); prov and slots are meaningless above it.
	serial bool
}

var serialInfo = &partInfo{serial: true}

// DerivePartitioning computes the hash-routing assignment for the planned
// query, or an error explaining why the plan must run serially.
func DerivePartitioning(pq *PlannedQuery) (*Partitioning, error) {
	p := &Partitioning{
		ScanKeys: make(map[*Scan][]int),
		TwoStage: make(map[*Aggregate]bool),
		cuts:     make(map[Node]bool),
		root:     pq.Root,
	}
	info, err := p.analyze(pq.Root)
	if err != nil {
		return nil, err
	}
	if !info.serial {
		p.cuts = nil // the whole plan is one partitioned chain
		if info.slots == nil {
			p.RoundRobin = true
			return p, nil
		}
	}
	// Safety net: every scan must have a routing decision (hash columns or
	// an explicit round-robin entry). The operator cases guarantee this,
	// but verify rather than silently mis-route.
	var missing error
	var walk func(n Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			if _, assigned := p.ScanKeys[s]; !assigned {
				missing = fmt.Errorf("plan: scan %s has no routing key", s.Name)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pq.Root)
	if missing != nil {
		return nil, missing
	}
	return p, nil
}

// twoStageEligible reports whether the aggregate's calls can be split into a
// per-partition partial and an exactly-merging serial final. The merge must
// reproduce the serial accumulator's value at *every* input prefix, or the
// byte-identical output contract breaks:
//
//   - COUNT/COUNT(*) merge by integer addition;
//   - SUM merges exactly for BIGINT/INTERVAL arguments (integer addition is
//     associative); floating-point sums are order-dependent and stay serial;
//   - AVG carries (exact integer sum, count) for BIGINT arguments;
//   - MIN/MAX carry the partition extremum; each partition keeps its own
//     retraction-correct multiset, and sub-bag routing (see full-row hashing
//     above) makes the extremum-of-extremums the global extremum;
//   - DISTINCT aggregates cannot merge at all: the same value may reach
//     several partitions, so per-partition distinct states double-count.
func twoStageEligible(x *Aggregate) error {
	for _, call := range x.Aggs {
		if call.Distinct {
			return fmt.Errorf("plan: DISTINCT aggregate %s cannot be split into partial/final stages", call.Describe())
		}
		switch call.Kind {
		case AggCountStar, AggCount, AggMin, AggMax:
			// Always mergeable.
		case AggSum:
			if call.K == types.KindFloat64 {
				return fmt.Errorf("plan: floating-point %s is order-dependent and cannot merge exactly", call.Describe())
			}
		case AggAvg:
			if call.Arg.Kind() == types.KindFloat64 {
				return fmt.Errorf("plan: floating-point %s is order-dependent and cannot merge exactly", call.Describe())
			}
		default:
			return fmt.Errorf("plan: aggregate %s has no partial/final form", call.Describe())
		}
	}
	return nil
}

// cutChild marks a (fully partitionable, non-serial) subtree as an exchange
// cut: it runs in the partition chains and its merged output feeds the serial
// tail. A subtree that never acquired a hash constraint holds no
// partition-resident state, so its scans route round-robin.
func (p *Partitioning) cutChild(n Node, info *partInfo) {
	p.cuts[n] = true
	if info.slots == nil {
		p.assignRoundRobin(n)
	}
}

// assignScans records a routing for every unassigned scan of the subtree,
// with cols choosing the per-scan routing key (nil = round-robin).
func (p *Partitioning) assignScans(n Node, cols func(*Scan) []int) {
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			if _, done := p.ScanKeys[s]; !done {
				p.ScanKeys[s] = cols(s)
				p.order = append(p.order, s)
			}
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
}

// assignRoundRobin records a round-robin routing for every unassigned scan of
// the subtree.
func (p *Partitioning) assignRoundRobin(n Node) {
	p.assignScans(n, func(*Scan) []int { return nil })
}

// assignFullRow routes every unassigned scan of the subtree by the hash of
// its entire row. Used below a two-stage aggregate whose input has no
// inherited constraint: identical scan rows co-locate, so each partition's
// partial input is a true sub-bag of the global bag and retractions always
// meet the state they retract.
func (p *Partitioning) assignFullRow(n Node) {
	p.assignScans(n, func(s *Scan) []int {
		cols := make([]int, s.Sch.Len())
		for i := range cols {
			cols[i] = i
		}
		return cols
	})
}

func (p *Partitioning) analyze(n Node) (*partInfo, error) {
	switch x := n.(type) {
	case *Scan:
		in := &partInfo{prov: make([]provRef, x.Sch.Len())}
		for i := range in.prov {
			in.prov[i] = provRef{scan: x, col: i, ok: true}
		}
		return in, nil

	case *Filter:
		// Filtering drops rows but never moves values between columns.
		return p.analyze(x.Input)

	case *Project:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		if in.serial {
			return serialInfo, nil
		}
		out := &partInfo{prov: make([]provRef, len(x.Exprs))}
		for i, e := range x.Exprs {
			if cr, ok := e.(*ColRef); ok {
				out.prov[i] = in.prov[cr.Idx]
			}
		}
		if in.slots != nil {
			out.slots = make([]slotRef, len(in.slots))
			for si, s := range in.slots {
				var pos []int
				for i, e := range x.Exprs {
					if cr, ok := e.(*ColRef); ok && containsInt(s.positions, cr.Idx) {
						pos = append(pos, i)
					}
				}
				out.slots[si] = slotRef{positions: pos}
			}
		}
		return out, nil

	case *WindowTVF:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		if in.serial {
			// The session/tumble/hop operator itself runs in the tail,
			// where it sees the merged serial-order stream.
			return serialInfo, nil
		}
		if x.Fn == SessionFn {
			return nil, fmt.Errorf("plan: session windows merge across arbitrary rows and cannot be hash-partitioned")
		}
		// Tumble/Hop append wstart/wend per row; input columns keep their
		// positions, the appended columns have no scan provenance.
		out := &partInfo{prov: make([]provRef, len(in.prov)+2), slots: in.slots}
		copy(out.prov, in.prov)
		return out, nil

	case *Distinct:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		if in.serial {
			return serialInfo, nil
		}
		if in.slots == nil {
			// DISTINCT's state key is the whole row: equal rows agree on
			// every column, so hashing any provenance-backed subset
			// co-locates duplicates.
			var cols []int
			for i, pr := range in.prov {
				if pr.ok {
					cols = append(cols, i)
				}
			}
			if len(cols) == 0 {
				// No scan-backed column to hash: run DISTINCT serially
				// in the tail over the merged (round-robin) input.
				p.cutChild(x.Input, in)
				return serialInfo, nil
			}
			if err := p.assign(in, cols); err != nil {
				return nil, err
			}
			in.slots = make([]slotRef, len(cols))
			for i, c := range cols {
				in.slots[i] = slotRef{positions: []int{c}}
			}
			return in, nil
		}
		// Constrained input: equal rows co-locate only if every
		// partition-key component is still present in the row (a
		// projection may have dropped the key columns, after which equal
		// rows can hash apart). Otherwise cut: the input stays
		// partitioned on its own key and DISTINCT runs in the tail.
		for _, s := range in.slots {
			if len(s.positions) == 0 {
				p.cutChild(x.Input, in)
				return serialInfo, nil
			}
		}
		return in, nil

	case *Aggregate:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		if in.serial {
			return serialInfo, nil
		}
		out := &partInfo{prov: make([]provRef, x.Sch.Len())}
		for ki, k := range x.Keys {
			if cr, ok := k.(*ColRef); ok {
				out.prov[ki] = in.prov[cr.Idx]
			}
		}
		if in.slots == nil {
			// Create the constraint: hash every grouping key that is a
			// plain scan-backed column reference. Rows of one group are
			// equal on all keys, hence on the hashed subset.
			var inCols, outPos []int
			for ki, k := range x.Keys {
				if cr, ok := k.(*ColRef); ok && in.prov[cr.Idx].ok {
					inCols = append(inCols, cr.Idx)
					outPos = append(outPos, ki)
				}
			}
			if len(inCols) == 0 {
				// No scan-backed grouping key (grouping only by derived
				// columns, or a global aggregate): split into a
				// full-row-hashed partial and a serial final.
				if merr := twoStageEligible(x); merr != nil {
					return nil, fmt.Errorf("plan: aggregation has no hash-partitionable grouping key and %v", merr)
				}
				p.TwoStage[x] = true
				p.cuts[x] = true
				p.assignFullRow(x.Input)
				return serialInfo, nil
			}
			if err := p.assign(in, inCols); err != nil {
				return nil, err
			}
			out.slots = make([]slotRef, len(inCols))
			for i := range inCols {
				out.slots[i] = slotRef{positions: []int{outPos[i]}}
			}
			return out, nil
		}
		// Check the inherited constraint: every partition-key component
		// must be one of this aggregation's grouping keys, otherwise a
		// group would span partitions.
		out.slots = make([]slotRef, len(in.slots))
		compatible := true
		for si, s := range in.slots {
			var pos []int
			for ki, k := range x.Keys {
				if cr, ok := k.(*ColRef); ok && containsInt(s.positions, cr.Idx) {
					pos = append(pos, ki)
				}
			}
			if len(pos) == 0 {
				compatible = false
				break
			}
			out.slots[si] = slotRef{positions: pos}
		}
		if !compatible {
			// The aggregate re-keys incompatibly with the inherited
			// routing: keep the input partitioned on its existing key,
			// accumulate partials per partition, merge in the tail.
			if merr := twoStageEligible(x); merr != nil {
				return nil, fmt.Errorf("plan: grouping keys do not preserve the partition key and %v", merr)
			}
			p.TwoStage[x] = true
			p.cuts[x] = true
			return serialInfo, nil
		}
		return out, nil

	case *Join:
		li, err := p.analyze(x.Left)
		if err != nil {
			return nil, err
		}
		ri, err := p.analyze(x.Right)
		if err != nil {
			return nil, err
		}
		switch {
		case li.serial && ri.serial:
			return serialInfo, nil
		case li.serial:
			p.cutChild(x.Right, ri)
			return serialInfo, nil
		case ri.serial:
			p.cutChild(x.Left, li)
			return serialInfo, nil
		}
		leftW := x.Left.Schema().Len()
		out := &partInfo{prov: make([]provRef, len(li.prov)+len(ri.prov))}
		copy(out.prov, li.prov)
		copy(out.prov[leftW:], ri.prov)

		// cutBoth demotes the join to the serial tail when its equi keys
		// cannot co-partition the two sides; each side keeps whatever
		// internal routing it already proved.
		cutBoth := func() (*partInfo, error) {
			p.cutChild(x.Left, li)
			p.cutChild(x.Right, ri)
			return serialInfo, nil
		}

		switch {
		case li.slots == nil && ri.slots == nil:
			// Create the constraint from every scan-backed equi pair.
			// Matching rows agree pairwise, so both sides hash alike.
			var lCols, rCols []int
			var slots []slotRef
			for i := range x.LeftKeys {
				l, r := x.LeftKeys[i], x.RightKeys[i]
				if li.prov[l].ok && ri.prov[r].ok {
					lCols = append(lCols, l)
					rCols = append(rCols, r)
					slots = append(slots, slotRef{positions: []int{l, leftW + r}})
				}
			}
			if len(slots) == 0 {
				return cutBoth()
			}
			if err := p.assign(li, lCols); err != nil {
				return nil, err
			}
			if err := p.assign(ri, rCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		case li.slots != nil && ri.slots == nil:
			slots, rCols, err := alignJoinSide(li.slots, x.LeftKeys, x.RightKeys, ri, leftW, false)
			if err != nil {
				return cutBoth()
			}
			if err := p.assign(ri, rCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		case li.slots == nil && ri.slots != nil:
			slots, lCols, err := alignJoinSide(ri.slots, x.RightKeys, x.LeftKeys, li, leftW, true)
			if err != nil {
				return cutBoth()
			}
			if err := p.assign(li, lCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		default:
			// Both sides already partitioned: the keys must pair up
			// component-by-component through the equi predicates.
			if len(li.slots) != len(ri.slots) {
				return cutBoth()
			}
			out.slots = make([]slotRef, len(li.slots))
			for si := range li.slots {
				found := false
				for i := range x.LeftKeys {
					if containsInt(li.slots[si].positions, x.LeftKeys[i]) && containsInt(ri.slots[si].positions, x.RightKeys[i]) {
						pos := append(append([]int{}, li.slots[si].positions...), shiftInts(ri.slots[si].positions, leftW)...)
						out.slots[si] = slotRef{positions: pos}
						found = true
						break
					}
				}
				if !found {
					return cutBoth()
				}
			}
			return out, nil
		}

	case *Values:
		return nil, fmt.Errorf("plan: constant relations emit at open time and cannot be partitioned")
	case *Union:
		return nil, fmt.Errorf("plan: UNION inputs cannot be co-partitioned")
	case *SetOp:
		return nil, fmt.Errorf("plan: set operations cannot be co-partitioned")
	default:
		return nil, fmt.Errorf("plan: cannot partition node %T", n)
	}
}

// alignJoinSide extends a one-side partition key across a join: for each key
// component (a slot of the constrained side), an equi pair must anchor it to
// a scan-backed column of the unconstrained side, which then receives the
// matching routing assignment. constrainedIsRight says the constrained slots
// belong to the join's right input (and therefore shift by leftW in the
// output).
func alignJoinSide(constrained []slotRef, constrainedKeys, otherKeys []int, other *partInfo, leftW int, constrainedIsRight bool) ([]slotRef, []int, error) {
	slots := make([]slotRef, len(constrained))
	otherCols := make([]int, 0, len(constrained))
	for si, s := range constrained {
		found := false
		for i := range constrainedKeys {
			if containsInt(s.positions, constrainedKeys[i]) && other.prov[otherKeys[i]].ok {
				oc := otherKeys[i]
				otherCols = append(otherCols, oc)
				var pos []int
				if constrainedIsRight {
					pos = append(shiftInts(s.positions, leftW), oc)
				} else {
					pos = append(append([]int{}, s.positions...), leftW+oc)
				}
				slots[si] = slotRef{positions: pos}
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("plan: join equi keys do not cover the partition key (component %d)", si)
		}
	}
	return slots, otherCols, nil
}

// assign records the routing columns for a freshly created constraint. All
// columns must trace to a single scan: the analysis only creates constraints
// over unconstrained subtrees, which (having no stateful combiner) contain
// exactly one scan.
func (p *Partitioning) assign(in *partInfo, cols []int) error {
	var scan *Scan
	scanCols := make([]int, 0, len(cols))
	for _, c := range cols {
		pr := in.prov[c]
		if !pr.ok {
			return fmt.Errorf("plan: internal: routing column %d has no provenance", c)
		}
		if scan == nil {
			scan = pr.scan
		} else if scan != pr.scan {
			return fmt.Errorf("plan: partition key spans scans %s and %s", scan.Name, pr.scan.Name)
		}
		scanCols = append(scanCols, pr.col)
	}
	if _, dup := p.ScanKeys[scan]; dup {
		return fmt.Errorf("plan: internal: scan %s assigned twice", scan.Name)
	}
	p.ScanKeys[scan] = scanCols
	p.order = append(p.order, scan)
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func shiftInts(xs []int, d int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + d
	}
	return out
}
