package plan

import "fmt"

// This file derives the metadata for key-partitioned parallel execution: a
// hash-routing assignment per scan under which the plan can run as N
// independent per-partition operator chains whose merged output is identical
// to serial execution.
//
// The analysis rests on one invariant: rows that can ever meet in a stateful
// operator's state (the same aggregation group, the same join-key bucket, the
// same DISTINCT row) must be routed to the same partition. Stateless
// operators (filter, project, tumble/hop windows) never combine rows, so they
// impose no constraint. A plan with no stateful operator at all may be
// partitioned round-robin.
//
// Bottom-up, each subtree reports:
//
//   - provenance: which output columns are verbatim copies of a scan column
//     (hash routing must be computable at the scan, before any operator runs);
//   - the partition-key slots already fixed by stateful operators below, as
//     the output column positions carrying each key component.
//
// Stateful operators either create a constraint (choosing hashable columns
// from their keys and assigning routing columns to the scans below) or check
// that the inherited constraint is compatible (every key component must be
// functionally preserved by their own grouping/join keys). Incompatible or
// inherently global operators (keyless aggregation, session windows, set
// operations, constant relations) make the plan non-partitionable and the
// caller falls back to serial execution.

// Partitioning is the routing assignment for a partitionable plan.
type Partitioning struct {
	// ScanKeys maps each Scan node of the plan to the ordered column
	// indexes (in the scan's schema) whose values are hashed to route a
	// row. Co-partitioned scans (join sides) list their columns in the
	// same component order so matching rows hash identically.
	ScanKeys map[*Scan][]int
	// RoundRobin is set when the plan has no stateful operator: any
	// deterministic routing preserves results, so the driver may balance
	// load freely.
	RoundRobin bool

	order []*Scan // assignment order, for deterministic Describe output
}

// Describe renders the routing assignment deterministically.
func (p *Partitioning) Describe() string {
	if p.RoundRobin {
		return "round-robin"
	}
	s := ""
	for i, sc := range p.order {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("hash(%s:%v)", sc.Name, p.ScanKeys[sc])
	}
	return s
}

// provRef records that an output column is a verbatim copy of a scan column.
type provRef struct {
	scan *Scan
	col  int
	ok   bool
}

// slotRef is one component of the partition key: the output column positions
// currently carrying its value (several after a join; possibly none after a
// projection dropped it, which only matters if a parent still needs it).
type slotRef struct {
	positions []int
}

// partInfo is the bottom-up analysis state for one node's output.
type partInfo struct {
	prov  []provRef
	slots []slotRef // nil while no stateful operator constrained the subtree
}

// DerivePartitioning computes the hash-routing assignment for the planned
// query, or an error explaining why the plan must run serially.
func DerivePartitioning(pq *PlannedQuery) (*Partitioning, error) {
	p := &Partitioning{ScanKeys: make(map[*Scan][]int)}
	info, err := p.analyze(pq.Root)
	if err != nil {
		return nil, err
	}
	if info.slots == nil {
		p.RoundRobin = true
		return p, nil
	}
	// Safety net: a constrained plan must have every scan assigned. The
	// operator cases guarantee this (any two-input combiner is stateful or
	// non-partitionable), but verify rather than silently mis-route.
	var missing error
	var walk func(n Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			if _, assigned := p.ScanKeys[s]; !assigned {
				missing = fmt.Errorf("plan: scan %s has no routing key", s.Name)
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(pq.Root)
	if missing != nil {
		return nil, missing
	}
	return p, nil
}

func (p *Partitioning) analyze(n Node) (*partInfo, error) {
	switch x := n.(type) {
	case *Scan:
		in := &partInfo{prov: make([]provRef, x.Sch.Len())}
		for i := range in.prov {
			in.prov[i] = provRef{scan: x, col: i, ok: true}
		}
		return in, nil

	case *Filter:
		// Filtering drops rows but never moves values between columns.
		return p.analyze(x.Input)

	case *Project:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		out := &partInfo{prov: make([]provRef, len(x.Exprs))}
		for i, e := range x.Exprs {
			if cr, ok := e.(*ColRef); ok {
				out.prov[i] = in.prov[cr.Idx]
			}
		}
		if in.slots != nil {
			out.slots = make([]slotRef, len(in.slots))
			for si, s := range in.slots {
				var pos []int
				for i, e := range x.Exprs {
					if cr, ok := e.(*ColRef); ok && containsInt(s.positions, cr.Idx) {
						pos = append(pos, i)
					}
				}
				out.slots[si] = slotRef{positions: pos}
			}
		}
		return out, nil

	case *WindowTVF:
		if x.Fn == SessionFn {
			return nil, fmt.Errorf("plan: session windows merge across arbitrary rows and cannot be hash-partitioned")
		}
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		// Tumble/Hop append wstart/wend per row; input columns keep their
		// positions, the appended columns have no scan provenance.
		out := &partInfo{prov: make([]provRef, len(in.prov)+2), slots: in.slots}
		copy(out.prov, in.prov)
		return out, nil

	case *Distinct:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		if in.slots == nil {
			// DISTINCT's state key is the whole row: equal rows agree on
			// every column, so hashing any provenance-backed subset
			// co-locates duplicates.
			var cols []int
			for i, pr := range in.prov {
				if pr.ok {
					cols = append(cols, i)
				}
			}
			if len(cols) == 0 {
				return nil, fmt.Errorf("plan: DISTINCT input has no scan-backed column to hash")
			}
			if err := p.assign(in, cols); err != nil {
				return nil, err
			}
			in.slots = make([]slotRef, len(cols))
			for i, c := range cols {
				in.slots[i] = slotRef{positions: []int{c}}
			}
			return in, nil
		}
		// Constrained input: equal rows co-locate only if every
		// partition-key component is still present in the row (a
		// projection may have dropped the key columns, after which equal
		// rows can hash apart).
		for si, s := range in.slots {
			if len(s.positions) == 0 {
				return nil, fmt.Errorf("plan: DISTINCT input no longer carries the partition key (component %d)", si)
			}
		}
		return in, nil

	case *Aggregate:
		in, err := p.analyze(x.Input)
		if err != nil {
			return nil, err
		}
		out := &partInfo{prov: make([]provRef, x.Sch.Len())}
		for ki, k := range x.Keys {
			if cr, ok := k.(*ColRef); ok {
				out.prov[ki] = in.prov[cr.Idx]
			}
		}
		if in.slots == nil {
			// Create the constraint: hash every grouping key that is a
			// plain scan-backed column reference. Rows of one group are
			// equal on all keys, hence on the hashed subset.
			var inCols, outPos []int
			for ki, k := range x.Keys {
				if cr, ok := k.(*ColRef); ok && in.prov[cr.Idx].ok {
					inCols = append(inCols, cr.Idx)
					outPos = append(outPos, ki)
				}
			}
			if len(inCols) == 0 {
				return nil, fmt.Errorf("plan: aggregation has no hash-partitionable grouping key")
			}
			if err := p.assign(in, inCols); err != nil {
				return nil, err
			}
			out.slots = make([]slotRef, len(inCols))
			for i := range inCols {
				out.slots[i] = slotRef{positions: []int{outPos[i]}}
			}
			return out, nil
		}
		// Check the inherited constraint: every partition-key component
		// must be one of this aggregation's grouping keys, otherwise a
		// group would span partitions.
		out.slots = make([]slotRef, len(in.slots))
		for si, s := range in.slots {
			var pos []int
			for ki, k := range x.Keys {
				if cr, ok := k.(*ColRef); ok && containsInt(s.positions, cr.Idx) {
					pos = append(pos, ki)
				}
			}
			if len(pos) == 0 {
				return nil, fmt.Errorf("plan: grouping keys do not preserve the partition key (component %d)", si)
			}
			out.slots[si] = slotRef{positions: pos}
		}
		return out, nil

	case *Join:
		li, err := p.analyze(x.Left)
		if err != nil {
			return nil, err
		}
		ri, err := p.analyze(x.Right)
		if err != nil {
			return nil, err
		}
		leftW := x.Left.Schema().Len()
		out := &partInfo{prov: make([]provRef, len(li.prov)+len(ri.prov))}
		copy(out.prov, li.prov)
		copy(out.prov[leftW:], ri.prov)

		switch {
		case li.slots == nil && ri.slots == nil:
			// Create the constraint from every scan-backed equi pair.
			// Matching rows agree pairwise, so both sides hash alike.
			var lCols, rCols []int
			var slots []slotRef
			for i := range x.LeftKeys {
				l, r := x.LeftKeys[i], x.RightKeys[i]
				if li.prov[l].ok && ri.prov[r].ok {
					lCols = append(lCols, l)
					rCols = append(rCols, r)
					slots = append(slots, slotRef{positions: []int{l, leftW + r}})
				}
			}
			if len(slots) == 0 {
				return nil, fmt.Errorf("plan: join has no hash-partitionable equi key")
			}
			if err := p.assign(li, lCols); err != nil {
				return nil, err
			}
			if err := p.assign(ri, rCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		case li.slots != nil && ri.slots == nil:
			slots, rCols, err := alignJoinSide(li.slots, x.LeftKeys, x.RightKeys, ri, leftW, false)
			if err != nil {
				return nil, err
			}
			if err := p.assign(ri, rCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		case li.slots == nil && ri.slots != nil:
			slots, lCols, err := alignJoinSide(ri.slots, x.RightKeys, x.LeftKeys, li, leftW, true)
			if err != nil {
				return nil, err
			}
			if err := p.assign(li, lCols); err != nil {
				return nil, err
			}
			out.slots = slots
			return out, nil

		default:
			// Both sides already partitioned: the keys must pair up
			// component-by-component through the equi predicates.
			if len(li.slots) != len(ri.slots) {
				return nil, fmt.Errorf("plan: join sides are partitioned by keys of different arity (%d vs %d)", len(li.slots), len(ri.slots))
			}
			out.slots = make([]slotRef, len(li.slots))
			for si := range li.slots {
				found := false
				for i := range x.LeftKeys {
					if containsInt(li.slots[si].positions, x.LeftKeys[i]) && containsInt(ri.slots[si].positions, x.RightKeys[i]) {
						pos := append(append([]int{}, li.slots[si].positions...), shiftInts(ri.slots[si].positions, leftW)...)
						out.slots[si] = slotRef{positions: pos}
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("plan: join equi keys do not align the two sides' partition keys (component %d)", si)
				}
			}
			return out, nil
		}

	case *Values:
		return nil, fmt.Errorf("plan: constant relations emit at open time and cannot be partitioned")
	case *Union:
		return nil, fmt.Errorf("plan: UNION inputs cannot be co-partitioned")
	case *SetOp:
		return nil, fmt.Errorf("plan: set operations cannot be co-partitioned")
	default:
		return nil, fmt.Errorf("plan: cannot partition node %T", n)
	}
}

// alignJoinSide extends a one-side partition key across a join: for each key
// component (a slot of the constrained side), an equi pair must anchor it to
// a scan-backed column of the unconstrained side, which then receives the
// matching routing assignment. constrainedIsRight says the constrained slots
// belong to the join's right input (and therefore shift by leftW in the
// output).
func alignJoinSide(constrained []slotRef, constrainedKeys, otherKeys []int, other *partInfo, leftW int, constrainedIsRight bool) ([]slotRef, []int, error) {
	slots := make([]slotRef, len(constrained))
	otherCols := make([]int, 0, len(constrained))
	for si, s := range constrained {
		found := false
		for i := range constrainedKeys {
			if containsInt(s.positions, constrainedKeys[i]) && other.prov[otherKeys[i]].ok {
				oc := otherKeys[i]
				otherCols = append(otherCols, oc)
				var pos []int
				if constrainedIsRight {
					pos = append(shiftInts(s.positions, leftW), oc)
				} else {
					pos = append(append([]int{}, s.positions...), leftW+oc)
				}
				slots[si] = slotRef{positions: pos}
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("plan: join equi keys do not cover the partition key (component %d)", si)
		}
	}
	return slots, otherCols, nil
}

// assign records the routing columns for a freshly created constraint. All
// columns must trace to a single scan: the analysis only creates constraints
// over unconstrained subtrees, which (having no stateful combiner) contain
// exactly one scan.
func (p *Partitioning) assign(in *partInfo, cols []int) error {
	var scan *Scan
	scanCols := make([]int, 0, len(cols))
	for _, c := range cols {
		pr := in.prov[c]
		if !pr.ok {
			return fmt.Errorf("plan: internal: routing column %d has no provenance", c)
		}
		if scan == nil {
			scan = pr.scan
		} else if scan != pr.scan {
			return fmt.Errorf("plan: partition key spans scans %s and %s", scan.Name, pr.scan.Name)
		}
		scanCols = append(scanCols, pr.col)
	}
	if _, dup := p.ScanKeys[scan]; dup {
		return fmt.Errorf("plan: internal: scan %s assigned twice", scan.Name)
	}
	p.ScanKeys[scan] = scanCols
	p.order = append(p.order, scan)
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func shiftInts(xs []int, d int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + d
	}
	return out
}
