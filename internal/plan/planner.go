package plan

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Planner translates parsed queries into validated logical plans.
type Planner struct {
	cat Catalog
	cfg Config
}

// New creates a planner over the given catalog.
func New(cat Catalog, cfg Config) *Planner {
	return &Planner{cat: cat, cfg: cfg}
}

// Plan plans a full query including presentation and EMIT validation.
func (p *Planner) Plan(q *sqlparser.Query) (*PlannedQuery, error) {
	root, err := p.planBody(q.Body)
	if err != nil {
		return nil, err
	}
	pq := &PlannedQuery{Root: root}
	outSch := root.Schema()
	for _, o := range q.OrderBy {
		idx, err := resolveOutputColumn(o.Expr, outSch)
		if err != nil {
			return nil, err
		}
		pq.OrderBy = append(pq.OrderBy, SortKey{Col: idx, Desc: o.Desc})
	}
	if q.Limit != nil {
		lit, ok := q.Limit.(*sqlparser.Literal)
		if !ok || lit.Val.Kind() != types.KindInt64 || lit.Val.Int() < 0 {
			return nil, fmt.Errorf("plan: LIMIT must be a non-negative integer literal")
		}
		n := lit.Val.Int()
		pq.Limit = &n
	}
	if q.Emit != nil {
		spec, err := p.planEmit(q.Emit, root)
		if err != nil {
			return nil, err
		}
		pq.Emit = spec
		if spec.Stream && len(pq.OrderBy) > 0 {
			return nil, fmt.Errorf("plan: ORDER BY cannot be combined with EMIT STREAM (a changelog has no total order to present)")
		}
		if spec.Stream && pq.Limit != nil {
			return nil, fmt.Errorf("plan: LIMIT cannot be combined with EMIT STREAM")
		}
	}
	pq.EmitKeyIdxs = outSch.EmitKeyCols()
	return pq, nil
}

func (p *Planner) planEmit(e *sqlparser.EmitClause, root Node) (EmitSpec, error) {
	spec := EmitSpec{Stream: e.Stream, AfterWatermark: e.AfterWatermark}
	if e.AfterDelay != nil {
		b := &binder{}
		s, err := b.bind(e.AfterDelay)
		if err != nil {
			return spec, err
		}
		if !IsConst(s) || s.Kind() != types.KindInterval {
			return spec, fmt.Errorf("plan: EMIT AFTER DELAY requires a constant INTERVAL")
		}
		v, err := s.Eval(nil)
		if err != nil {
			return spec, err
		}
		if v.Interval() <= 0 {
			return spec, fmt.Errorf("plan: EMIT AFTER DELAY requires a positive INTERVAL")
		}
		d := v.Interval()
		spec.Delay = &d
	}
	if (spec.AfterWatermark || spec.Delay != nil) && !root.Schema().HasEventTime() {
		return spec, fmt.Errorf("plan: EMIT AFTER WATERMARK/DELAY requires an event-time column in the query result (Extension 1); the result schema %s has none", root.Schema())
	}
	return spec, nil
}

// resolveOutputColumn resolves an ORDER BY expression against the output
// schema: by name, qualified name, or 1-based ordinal.
func resolveOutputColumn(e sqlparser.Expr, sch *types.Schema) (int, error) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		if idx := sch.IndexOf(x.Name); idx >= 0 {
			return idx, nil
		}
		return 0, fmt.Errorf("plan: ORDER BY column %s not in result", x)
	case *sqlparser.Literal:
		if x.Val.Kind() == types.KindInt64 {
			n := x.Val.Int()
			if n >= 1 && int(n) <= sch.Len() {
				return int(n - 1), nil
			}
		}
		return 0, fmt.Errorf("plan: ORDER BY position %s out of range", x)
	default:
		return 0, fmt.Errorf("plan: ORDER BY supports output columns and ordinals only")
	}
}

func (p *Planner) planBody(body sqlparser.QueryBody) (Node, error) {
	switch b := body.(type) {
	case *sqlparser.SelectStmt:
		return p.planSelect(b)
	case *sqlparser.SetOpQuery:
		return p.planSetOp(b)
	default:
		return nil, fmt.Errorf("plan: unsupported query body %T", body)
	}
}

func (p *Planner) planSetOp(s *sqlparser.SetOpQuery) (Node, error) {
	left, err := p.planBody(s.Left)
	if err != nil {
		return nil, err
	}
	right, err := p.planBody(s.Right)
	if err != nil {
		return nil, err
	}
	sch, err := unifySchemas(left.Schema(), right.Schema())
	if err != nil {
		return nil, fmt.Errorf("plan: %s: %w", s.Op, err)
	}
	var node Node
	switch s.Op {
	case sqlparser.Union:
		node = &Union{Inputs: []Node{left, right}, Sch: sch}
		if !s.All {
			node = &Distinct{Input: node}
		}
	default:
		node = &SetOp{Op: s.Op, All: s.All, Left: left, Right: right, Sch: sch}
	}
	return node, nil
}

// unifySchemas checks set-operation compatibility and merges column
// metadata: names come from the left; event-time alignment survives only if
// both sides agree.
func unifySchemas(l, r *types.Schema) (*types.Schema, error) {
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("operand column counts differ (%d vs %d)", l.Len(), r.Len())
	}
	cols := make([]types.Column, l.Len())
	for i := range cols {
		lc, rc := l.Cols[i], r.Cols[i]
		k := lc.Kind
		switch {
		case lc.Kind == rc.Kind:
		case lc.Kind.IsNumeric() && rc.Kind.IsNumeric():
			k = types.KindFloat64
		case lc.Kind == types.KindNull:
			k = rc.Kind
		case rc.Kind == types.KindNull:
		default:
			return nil, fmt.Errorf("column %d kinds differ (%s vs %s)", i+1, lc.Kind, rc.Kind)
		}
		cols[i] = types.Column{
			Name:      lc.Name,
			Kind:      k,
			EventTime: lc.EventTime && rc.EventTime && lc.WmOffset == rc.WmOffset,
			Windowed:  lc.Windowed && rc.Windowed,
		}
		if cols[i].EventTime {
			cols[i].WmOffset = lc.WmOffset
		}
	}
	return &types.Schema{Cols: cols}, nil
}

// ---- scopes and binding ----

type scopeItem struct {
	qualifier string
	sch       *types.Schema
	offset    int
}

type scope struct {
	items []scopeItem
}

func (s *scope) width() int {
	if len(s.items) == 0 {
		return 0
	}
	last := s.items[len(s.items)-1]
	return last.offset + last.sch.Len()
}

func (s *scope) add(qualifier string, sch *types.Schema) {
	s.items = append(s.items, scopeItem{qualifier: qualifier, sch: sch, offset: s.width()})
}

func (s *scope) schema() *types.Schema {
	out := &types.Schema{}
	for _, it := range s.items {
		out.Cols = append(out.Cols, it.sch.Cols...)
	}
	return out
}

// resolve finds a column by (optional) qualifier and name, returning its
// absolute index and metadata.
func (s *scope) resolve(tbl, col string) (int, types.Column, error) {
	found := -1
	var meta types.Column
	for _, it := range s.items {
		if tbl != "" && !strings.EqualFold(tbl, it.qualifier) {
			continue
		}
		if idx := it.sch.IndexOf(col); idx >= 0 {
			if found >= 0 {
				return 0, meta, fmt.Errorf("plan: column %q is ambiguous", refName(tbl, col))
			}
			found = it.offset + idx
			meta = it.sch.Cols[idx]
		}
	}
	if found < 0 {
		return 0, meta, fmt.Errorf("plan: column %q not found", refName(tbl, col))
	}
	return found, meta, nil
}

func refName(tbl, col string) string {
	if tbl == "" {
		return col
	}
	return tbl + "." + col
}

// binder compiles AST expressions into Scalars over a scope's row layout.
type binder struct {
	sc   *scope // nil means constants only
	subq map[*sqlparser.SubqueryExpr]int
}

func (b *binder) bind(e sqlparser.Expr) (Scalar, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return &Const{Val: x.Val}, nil
	case *sqlparser.ColumnRef:
		if b.sc == nil {
			return nil, fmt.Errorf("plan: column %s not allowed in constant expression", x)
		}
		idx, meta, err := b.sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &ColRef{Idx: idx, Name: meta.Name, K: meta.Kind}, nil
	case *sqlparser.BinaryExpr:
		l, err := b.bind(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bind(x.R)
		if err != nil {
			return nil, err
		}
		return NewBinOp(x.Op, l, r)
	case *sqlparser.UnaryExpr:
		in, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		if x.Neg {
			k := in.Kind()
			if !k.IsNumeric() && k != types.KindInterval && k != types.KindNull {
				return nil, fmt.Errorf("plan: cannot negate %s", k)
			}
			return &Neg{E: in}, nil
		}
		if in.Kind() != types.KindBool && in.Kind() != types.KindNull {
			return nil, fmt.Errorf("plan: NOT requires BOOLEAN, got %s", in.Kind())
		}
		return &Not{E: in}, nil
	case *sqlparser.IsNullExpr:
		in, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: in, Not: x.Not}, nil
	case *sqlparser.BetweenExpr:
		// Desugar to (Lo <= E AND E <= Hi), negated if NOT.
		in, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := b.bind(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bind(x.Hi)
		if err != nil {
			return nil, err
		}
		lower, err := NewBinOp(sqlparser.OpGe, in, lo)
		if err != nil {
			return nil, err
		}
		upper, err := NewBinOp(sqlparser.OpLe, in, hi)
		if err != nil {
			return nil, err
		}
		both, err := NewBinOp(sqlparser.OpAnd, lower, upper)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return &Not{E: both}, nil
		}
		return both, nil
	case *sqlparser.InExpr:
		// Desugar to a chain of equality ORs.
		in, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		var acc Scalar
		for _, item := range x.List {
			it, err := b.bind(item)
			if err != nil {
				return nil, err
			}
			eq, err := NewBinOp(sqlparser.OpEq, in, it)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = eq
			} else {
				acc, err = NewBinOp(sqlparser.OpOr, acc, eq)
				if err != nil {
					return nil, err
				}
			}
		}
		if x.Not {
			return &Not{E: acc}, nil
		}
		return acc, nil
	case *sqlparser.CaseExpr:
		return b.bindCase(x)
	case *sqlparser.CastExpr:
		in, err := b.bind(x.E)
		if err != nil {
			return nil, err
		}
		return &Cast{E: in, To: x.To}, nil
	case *sqlparser.FuncCall:
		if _, isAgg := aggKinds[x.Name]; isAgg {
			return nil, fmt.Errorf("plan: aggregate %s is not allowed here", x.Name)
		}
		args := make([]Scalar, len(x.Args))
		for i, a := range x.Args {
			s, err := b.bind(a)
			if err != nil {
				return nil, err
			}
			args[i] = s
		}
		return NewCall(x.Name, args)
	case *sqlparser.SubqueryExpr:
		if b.subq != nil {
			if idx, ok := b.subq[x]; ok {
				return &ColRef{Idx: idx, Name: "subquery", K: b.subqKind(x)}, nil
			}
		}
		return nil, fmt.Errorf("plan: scalar subqueries are supported only in WHERE of non-aggregate queries (and must be uncorrelated)")
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// subqKind looks up the registered result kind for a planned subquery.
func (b *binder) subqKind(x *sqlparser.SubqueryExpr) types.Kind {
	idx := b.subq[x]
	sch := b.sc.schema()
	if idx < sch.Len() {
		return sch.Cols[idx].Kind
	}
	return types.KindNull
}

func (b *binder) bindCase(x *sqlparser.CaseExpr) (Scalar, error) {
	c := &Case{}
	var operand Scalar
	if x.Operand != nil {
		var err error
		operand, err = b.bind(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	resultKind := types.KindNull
	for _, w := range x.Whens {
		cond, err := b.bind(w.When)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond, err = NewBinOp(sqlparser.OpEq, operand, cond)
			if err != nil {
				return nil, err
			}
		} else if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
			return nil, fmt.Errorf("plan: CASE WHEN requires BOOLEAN, got %s", cond.Kind())
		}
		then, err := b.bind(w.Then)
		if err != nil {
			return nil, err
		}
		if resultKind == types.KindNull {
			resultKind = then.Kind()
		} else if then.Kind() != types.KindNull && then.Kind() != resultKind {
			if then.Kind().IsNumeric() && resultKind.IsNumeric() {
				resultKind = types.KindFloat64
			} else {
				return nil, fmt.Errorf("plan: CASE branches have mixed kinds %s and %s", resultKind, then.Kind())
			}
		}
		c.Whens = append(c.Whens, CaseWhen{When: cond, Then: then})
	}
	if x.Else != nil {
		e, err := b.bind(x.Else)
		if err != nil {
			return nil, err
		}
		if resultKind == types.KindNull {
			resultKind = e.Kind()
		} else if e.Kind() != types.KindNull && e.Kind() != resultKind {
			if e.Kind().IsNumeric() && resultKind.IsNumeric() {
				resultKind = types.KindFloat64
			} else {
				return nil, fmt.Errorf("plan: CASE branches have mixed kinds %s and %s", resultKind, e.Kind())
			}
		}
		c.Else = e
	}
	c.K = resultKind
	return c, nil
}

// ---- FROM planning ----

func (p *Planner) planFrom(items []sqlparser.TableExpr) (Node, *scope, error) {
	if len(items) == 0 {
		sch := types.NewSchema()
		node := &Values{Rows: []types.Row{{}}, Sch: sch}
		sc := &scope{}
		sc.add("", sch)
		return node, sc, nil
	}
	var node Node
	sc := &scope{}
	for _, item := range items {
		n, itemScope, err := p.planTableExpr(item)
		if err != nil {
			return nil, nil, err
		}
		if node == nil {
			node = n
			for _, it := range itemScope.items {
				sc.items = append(sc.items, it)
			}
			continue
		}
		base := sc.width()
		node = &Join{
			Left: node, Right: n, Kind: sqlparser.CrossJoin,
			Sch: node.Schema().Concat(n.Schema()),
		}
		for _, it := range itemScope.items {
			it.offset += base
			sc.items = append(sc.items, it)
		}
	}
	return node, sc, nil
}

func (p *Planner) planTableExpr(te sqlparser.TableExpr) (Node, *scope, error) {
	switch t := te.(type) {
	case *sqlparser.TableRef:
		rel, err := p.cat.Resolve(t.Name)
		if err != nil {
			return nil, nil, err
		}
		scan := &Scan{Name: rel.Name, Sch: rel.Schema.Clone(), Stream: rel.Unbounded}
		if t.AsOf != nil {
			b := &binder{}
			s, err := b.bind(t.AsOf)
			if err != nil {
				return nil, nil, err
			}
			if !IsConst(s) || s.Kind() != types.KindTimestamp {
				return nil, nil, fmt.Errorf("plan: AS OF SYSTEM TIME requires a constant TIMESTAMP")
			}
			v, err := s.Eval(nil)
			if err != nil {
				return nil, nil, err
			}
			at := v.Timestamp()
			scan.AsOf = &at
		}
		q := t.Alias
		if q == "" {
			q = t.Name
		}
		sc := &scope{}
		sc.add(q, scan.Sch)
		return scan, sc, nil
	case *sqlparser.SubqueryRef:
		if t.Query.Emit != nil {
			return nil, nil, fmt.Errorf("plan: EMIT is only allowed at the top level of a query")
		}
		if len(t.Query.OrderBy) > 0 || t.Query.Limit != nil {
			return nil, nil, fmt.Errorf("plan: ORDER BY/LIMIT are not supported in derived tables")
		}
		node, err := p.planBody(t.Query.Body)
		if err != nil {
			return nil, nil, err
		}
		sc := &scope{}
		sc.add(t.Alias, node.Schema())
		return node, sc, nil
	case *sqlparser.TVFRef:
		return p.planTVF(t)
	case *sqlparser.JoinExpr:
		return p.planJoin(t)
	default:
		return nil, nil, fmt.Errorf("plan: unsupported FROM element %T", te)
	}
}

func (p *Planner) planJoin(j *sqlparser.JoinExpr) (Node, *scope, error) {
	left, lsc, err := p.planTableExpr(j.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rsc, err := p.planTableExpr(j.Right)
	if err != nil {
		return nil, nil, err
	}
	sc := &scope{}
	for _, it := range lsc.items {
		sc.items = append(sc.items, it)
	}
	base := sc.width()
	for _, it := range rsc.items {
		it.offset += base
		sc.items = append(sc.items, it)
	}
	node := &Join{
		Left: left, Right: right, Kind: j.Kind,
		Sch: left.Schema().Concat(right.Schema()),
	}
	if j.On != nil {
		b := &binder{sc: sc}
		cond, err := b.bind(j.On)
		if err != nil {
			return nil, nil, err
		}
		if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
			return nil, nil, fmt.Errorf("plan: JOIN ON condition must be BOOLEAN")
		}
		ExtractJoinKeys(node, cond, left.Schema().Len())
	}
	return node, sc, nil
}

// ExtractJoinKeys splits cond into equi-key pairs and a residual predicate,
// storing both on the join node. Exported for the optimizer, which performs
// the same extraction when pushing WHERE predicates into cross joins.
func ExtractJoinKeys(j *Join, cond Scalar, leftWidth int) {
	var residuals []Scalar
	for _, c := range splitConjuncts(cond) {
		if b, ok := c.(*BinOp); ok && b.Op == sqlparser.OpEq {
			l, lok := b.L.(*ColRef)
			r, rok := b.R.(*ColRef)
			if lok && rok {
				if l.Idx < leftWidth && r.Idx >= leftWidth {
					j.LeftKeys = append(j.LeftKeys, l.Idx)
					j.RightKeys = append(j.RightKeys, r.Idx-leftWidth)
					continue
				}
				if r.Idx < leftWidth && l.Idx >= leftWidth {
					j.LeftKeys = append(j.LeftKeys, r.Idx)
					j.RightKeys = append(j.RightKeys, l.Idx-leftWidth)
					continue
				}
			}
		}
		residuals = append(residuals, c)
	}
	j.Residual = combineConjuncts(j.Residual, residuals)
}

func splitConjuncts(s Scalar) []Scalar {
	if b, ok := s.(*BinOp); ok && b.Op == sqlparser.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Scalar{s}
}

func combineConjuncts(acc Scalar, more []Scalar) Scalar {
	for _, m := range more {
		if acc == nil {
			acc = m
		} else {
			acc = &BinOp{Op: sqlparser.OpAnd, L: acc, R: m, K: types.KindBool}
		}
	}
	return acc
}

func (p *Planner) planTVF(t *sqlparser.TVFRef) (Node, *scope, error) {
	var fn WindowFn
	var params []string
	switch t.Name {
	case "TUMBLE":
		fn = TumbleFn
		params = []string{"data", "timecol", "dur", "offset"}
	case "HOP":
		fn = HopFn
		params = []string{"data", "timecol", "dur", "hopsize", "offset"}
	case "SESSION":
		fn = SessionFn
		params = []string{"data", "timecol", "gap"}
	default:
		return nil, nil, fmt.Errorf("plan: unknown table-valued function %s", t.Name)
	}
	byName := make(map[string]sqlparser.TVFArgValue)
	positional := 0
	for _, a := range t.Args {
		name := a.Name
		if name == "" {
			if positional >= len(params) {
				return nil, nil, fmt.Errorf("plan: too many arguments to %s", t.Name)
			}
			name = params[positional]
			positional++
		}
		// Accept "slide" as an alias for hopsize and "size" for dur.
		switch name {
		case "slide":
			name = "hopsize"
		case "size":
			name = "dur"
		}
		if _, dup := byName[name]; dup {
			return nil, nil, fmt.Errorf("plan: duplicate argument %q to %s", name, t.Name)
		}
		known := false
		for _, pn := range params {
			if pn == name {
				known = true
			}
		}
		if !known {
			return nil, nil, fmt.Errorf("plan: unknown argument %q to %s", name, t.Name)
		}
		byName[name] = a.Value
	}

	dataArg, ok := byName["data"].(*sqlparser.TableArg)
	if !ok || dataArg == nil {
		return nil, nil, fmt.Errorf("plan: %s requires a data => TABLE(...) argument", t.Name)
	}
	input, _, err := p.planTableExpr(dataArg.Table)
	if err != nil {
		return nil, nil, err
	}
	desc, ok := byName["timecol"].(*sqlparser.DescriptorArg)
	if !ok || desc == nil || len(desc.Cols) != 1 {
		return nil, nil, fmt.Errorf("plan: %s requires timecol => DESCRIPTOR(column)", t.Name)
	}
	timeIdx := input.Schema().IndexOf(desc.Cols[0])
	if timeIdx < 0 {
		return nil, nil, fmt.Errorf("plan: %s: no column %q in input", t.Name, desc.Cols[0])
	}
	if k := input.Schema().Cols[timeIdx].Kind; k != types.KindTimestamp {
		return nil, nil, fmt.Errorf("plan: %s: time column %q must be TIMESTAMP, is %s", t.Name, desc.Cols[0], k)
	}

	getDur := func(name string, required bool) (types.Duration, error) {
		v, present := byName[name]
		if !present {
			if required {
				return 0, fmt.Errorf("plan: %s requires a %s argument", t.Name, name)
			}
			return 0, nil
		}
		ea, ok := v.(*sqlparser.ExprArg)
		if !ok {
			return 0, fmt.Errorf("plan: %s: %s must be an INTERVAL expression", t.Name, name)
		}
		b := &binder{}
		s, err := b.bind(ea.E)
		if err != nil {
			return 0, err
		}
		if !IsConst(s) || s.Kind() != types.KindInterval {
			return 0, fmt.Errorf("plan: %s: %s must be a constant INTERVAL", t.Name, name)
		}
		val, err := s.Eval(nil)
		if err != nil {
			return 0, err
		}
		return val.Interval(), nil
	}

	w := &WindowTVF{Input: input, Fn: fn, TimeIdx: timeIdx}
	switch fn {
	case TumbleFn:
		if w.Dur, err = getDur("dur", true); err != nil {
			return nil, nil, err
		}
		if w.Offset, err = getDur("offset", false); err != nil {
			return nil, nil, err
		}
		if w.Dur <= 0 {
			return nil, nil, fmt.Errorf("plan: Tumble duration must be positive")
		}
	case HopFn:
		if w.Dur, err = getDur("dur", true); err != nil {
			return nil, nil, err
		}
		if w.Slide, err = getDur("hopsize", true); err != nil {
			return nil, nil, err
		}
		if w.Offset, err = getDur("offset", false); err != nil {
			return nil, nil, err
		}
		if w.Dur <= 0 || w.Slide <= 0 {
			return nil, nil, fmt.Errorf("plan: Hop duration and hopsize must be positive")
		}
	case SessionFn:
		if w.Gap, err = getDur("gap", true); err != nil {
			return nil, nil, err
		}
		if w.Gap <= 0 {
			return nil, nil, fmt.Errorf("plan: Session gap must be positive")
		}
	}

	sch := input.Schema().Clone()
	wstart := types.Column{Name: "wstart", Kind: types.KindTimestamp}
	wend := types.Column{Name: "wend", Kind: types.KindTimestamp}
	// Event-time alignment of the window columns (see types.Column.WmOffset):
	// wend is complete once the watermark passes it; wstart needs the window
	// duration added. Session wstart is not alignable (merges can reuse an
	// old wstart arbitrarily late).
	wstart.Windowed = true
	wend.Windowed = true
	if fn != SessionFn {
		wstart.EventTime = true
		wstart.WmOffset = w.Dur
		wend.EventTime = true
	} else {
		wend.EventTime = true
	}
	sch.Cols = append(sch.Cols, wstart, wend)
	w.Sch = sch

	q := t.Alias
	if q == "" {
		q = t.Name
	}
	sc := &scope{}
	sc.add(q, sch)
	return w, sc, nil
}

// ---- SELECT planning ----

var aggKinds = map[string]AggKind{
	"SUM": AggSum, "COUNT": AggCount, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func containsAgg(e sqlparser.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sqlparser.FuncCall:
		if _, ok := aggKinds[x.Name]; ok {
			return true
		}
		for _, a := range x.Args {
			if containsAgg(a) {
				return true
			}
		}
	case *sqlparser.BinaryExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case *sqlparser.UnaryExpr:
		return containsAgg(x.E)
	case *sqlparser.IsNullExpr:
		return containsAgg(x.E)
	case *sqlparser.BetweenExpr:
		return containsAgg(x.E) || containsAgg(x.Lo) || containsAgg(x.Hi)
	case *sqlparser.InExpr:
		if containsAgg(x.E) {
			return true
		}
		for _, i := range x.List {
			if containsAgg(i) {
				return true
			}
		}
	case *sqlparser.CaseExpr:
		if containsAgg(x.Operand) || containsAgg(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if containsAgg(w.When) || containsAgg(w.Then) {
				return true
			}
		}
	case *sqlparser.CastExpr:
		return containsAgg(x.E)
	}
	return false
}

func collectSubqueries(e sqlparser.Expr, out *[]*sqlparser.SubqueryExpr) {
	switch x := e.(type) {
	case nil:
	case *sqlparser.SubqueryExpr:
		*out = append(*out, x)
	case *sqlparser.BinaryExpr:
		collectSubqueries(x.L, out)
		collectSubqueries(x.R, out)
	case *sqlparser.UnaryExpr:
		collectSubqueries(x.E, out)
	case *sqlparser.IsNullExpr:
		collectSubqueries(x.E, out)
	case *sqlparser.BetweenExpr:
		collectSubqueries(x.E, out)
		collectSubqueries(x.Lo, out)
		collectSubqueries(x.Hi, out)
	case *sqlparser.InExpr:
		collectSubqueries(x.E, out)
		for _, i := range x.List {
			collectSubqueries(i, out)
		}
	case *sqlparser.CaseExpr:
		collectSubqueries(x.Operand, out)
		collectSubqueries(x.Else, out)
		for _, w := range x.Whens {
			collectSubqueries(w.When, out)
			collectSubqueries(w.Then, out)
		}
	case *sqlparser.CastExpr:
		collectSubqueries(x.E, out)
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			collectSubqueries(a, out)
		}
	}
}

func (p *Planner) planSelect(sel *sqlparser.SelectStmt) (Node, error) {
	node, sc, err := p.planFrom(sel.From)
	if err != nil {
		return nil, err
	}

	// Scalar subqueries in WHERE become cross joins against single-row
	// (global-aggregate) subplans; the subquery expression then reads the
	// appended column.
	subqCols := make(map[*sqlparser.SubqueryExpr]int)
	if sel.Where != nil {
		var subs []*sqlparser.SubqueryExpr
		collectSubqueries(sel.Where, &subs)
		for _, sq := range subs {
			if sq.Query.Emit != nil {
				return nil, fmt.Errorf("plan: EMIT is only allowed at the top level of a query")
			}
			sub, err := p.planBody(sq.Query.Body)
			if err != nil {
				return nil, fmt.Errorf("plan: in scalar subquery: %w", err)
			}
			if sub.Schema().Len() != 1 {
				return nil, fmt.Errorf("plan: scalar subquery must return exactly one column, returns %d", sub.Schema().Len())
			}
			base := sc.width()
			node = &Join{
				Left: node, Right: sub, Kind: sqlparser.CrossJoin,
				Sch: node.Schema().Concat(sub.Schema()),
			}
			sc.add(fmt.Sprintf("$subquery%d", len(subqCols)), sub.Schema())
			subqCols[sq] = base
		}
	}

	b := &binder{sc: sc, subq: subqCols}

	// WHERE.
	if sel.Where != nil {
		if containsAgg(sel.Where) {
			return nil, fmt.Errorf("plan: aggregates are not allowed in WHERE (use HAVING)")
		}
		cond, err := b.bind(sel.Where)
		if err != nil {
			return nil, err
		}
		if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
			return nil, fmt.Errorf("plan: WHERE condition must be BOOLEAN, got %s", cond.Kind())
		}
		node = &Filter{Input: node, Cond: cond}
	}

	// Expand stars into explicit items.
	items, err := expandStars(sel.Items, sc)
	if err != nil {
		return nil, err
	}

	isAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if containsAgg(it.Expr) {
			isAgg = true
		}
	}

	if isAgg {
		node, err = p.planAggregate(sel, items, node, sc, b)
		if err != nil {
			return nil, err
		}
	} else {
		node, err = planProjection(items, node, b)
		if err != nil {
			return nil, err
		}
	}

	if sel.Distinct {
		node = &Distinct{Input: node}
	}
	return node, nil
}

// expandStars replaces * and t.* items with explicit column references.
func expandStars(items []sqlparser.SelectItem, sc *scope) ([]sqlparser.SelectItem, error) {
	var out []sqlparser.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, si := range sc.items {
			if it.StarTable != "" && !strings.EqualFold(it.StarTable, si.qualifier) {
				continue
			}
			if strings.HasPrefix(si.qualifier, "$subquery") {
				continue
			}
			matched = true
			for _, c := range si.sch.Cols {
				out = append(out, sqlparser.SelectItem{
					Expr: &sqlparser.ColumnRef{Table: si.qualifier, Name: c.Name},
				})
			}
		}
		if !matched {
			return nil, fmt.Errorf("plan: no relation %q for %s.*", it.StarTable, it.StarTable)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("plan: SELECT list is empty")
	}
	return out, nil
}

// planProjection builds the Project node for a non-aggregate SELECT list.
func planProjection(items []sqlparser.SelectItem, input Node, b *binder) (Node, error) {
	exprs := make([]Scalar, len(items))
	cols := make([]types.Column, len(items))
	inSch := input.Schema()
	for i, it := range items {
		s, err := b.bind(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs[i] = s
		cols[i] = projectedColumn(s, it, inSch, i)
	}
	return &Project{Input: input, Exprs: exprs, Sch: &types.Schema{Cols: cols}}, nil
}

// projectedColumn derives output column metadata: verbatim column references
// keep their event-time alignment (the Section 5 lesson: operators may erase
// watermark alignment; only verbatim forwarding preserves it).
func projectedColumn(s Scalar, it sqlparser.SelectItem, inSch *types.Schema, pos int) types.Column {
	col := types.Column{Name: it.Alias, Kind: s.Kind()}
	if cr, ok := s.(*ColRef); ok && cr.Idx < inSch.Len() {
		in := inSch.Cols[cr.Idx]
		col.EventTime = in.EventTime
		col.WmOffset = in.WmOffset
		col.Windowed = in.Windowed
		if col.Name == "" {
			col.Name = in.Name
		}
	}
	if col.Name == "" {
		col.Name = synthesizeName(it.Expr, pos)
	}
	return col
}

func synthesizeName(e sqlparser.Expr, pos int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		if len(x.Args) == 1 {
			if cr, ok := x.Args[0].(*sqlparser.ColumnRef); ok {
				return cr.Name
			}
		}
		return strings.ToLower(x.Name)
	default:
		return fmt.Sprintf("EXPR$%d", pos)
	}
}

// planAggregate builds Aggregate -> (Filter having) -> Project.
func (p *Planner) planAggregate(sel *sqlparser.SelectStmt, items []sqlparser.SelectItem, input Node, sc *scope, b *binder) (Node, error) {
	inSch := input.Schema()

	// Bind grouping keys over the input scope.
	keys := make([]Scalar, len(sel.GroupBy))
	keyCols := make([]types.Column, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		if containsAgg(g) {
			return nil, fmt.Errorf("plan: aggregates are not allowed in GROUP BY")
		}
		s, err := b.bind(g)
		if err != nil {
			return nil, err
		}
		keys[i] = s
		col := types.Column{Kind: s.Kind(), Name: fmt.Sprintf("key$%d", i)}
		if cr, ok := s.(*ColRef); ok && cr.Idx < inSch.Len() {
			in := inSch.Cols[cr.Idx]
			col = in
		} else if gc, ok := g.(*sqlparser.ColumnRef); ok {
			col.Name = gc.Name
		}
		keyCols[i] = col
	}

	// Collect distinct aggregate calls from SELECT items and HAVING.
	var aggs []AggCall
	aggIndex := make(map[string]int) // canonical form -> index in aggs
	collect := func(e sqlparser.Expr) error {
		return collectAggCalls(e, b, &aggs, aggIndex)
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, err
		}
	}

	// Extension 2 validation: grouping an unbounded input requires an
	// event-time grouping key so the watermark can complete groups.
	if input.Unbounded() && len(keys) > 0 && !p.cfg.AllowUnboundedGroupBy {
		hasEventKey := false
		for _, kc := range keyCols {
			if kc.EventTime {
				hasEventKey = true
			}
		}
		if !hasEventKey {
			return nil, fmt.Errorf("plan: GROUP BY over an unbounded stream requires at least one event-time grouping key (Extension 2); keys %v have none", describeCols(keyCols))
		}
	}

	aggSch := &types.Schema{}
	aggSch.Cols = append(aggSch.Cols, keyCols...)
	for i, a := range aggs {
		aggSch.Cols = append(aggSch.Cols, types.Column{Name: fmt.Sprintf("agg$%d", i), Kind: a.K})
	}
	aggNode := &Aggregate{Input: input, Keys: keys, Aggs: aggs, Sch: aggSch}

	// Rebind SELECT items and HAVING over the aggregate's output.
	rw := &aggRewriter{b: b, keys: keys, nKeys: len(keys), aggs: aggs, aggIndex: aggIndex, aggSch: aggSch}

	var node Node = aggNode
	if sel.Having != nil {
		cond, err := rw.rewrite(sel.Having)
		if err != nil {
			return nil, err
		}
		if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
			return nil, fmt.Errorf("plan: HAVING condition must be BOOLEAN")
		}
		node = &Filter{Input: node, Cond: cond}
	}

	exprs := make([]Scalar, len(items))
	cols := make([]types.Column, len(items))
	for i, it := range items {
		s, err := rw.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		exprs[i] = s
		cols[i] = projectedColumn(s, it, aggSch, i)
	}
	return &Project{Input: node, Exprs: exprs, Sch: &types.Schema{Cols: cols}}, nil
}

func describeCols(cols []types.Column) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// collectAggCalls finds aggregate FuncCalls in e, binds their arguments over
// the input scope, and registers them (deduplicated by canonical form).
func collectAggCalls(e sqlparser.Expr, b *binder, aggs *[]AggCall, index map[string]int) error {
	fc, ok := e.(*sqlparser.FuncCall)
	if ok {
		if kind, isAgg := aggKinds[fc.Name]; isAgg {
			call, canon, err := bindAggCall(fc, kind, b)
			if err != nil {
				return err
			}
			if _, seen := index[canon]; !seen {
				index[canon] = len(*aggs)
				*aggs = append(*aggs, call)
			}
			return nil
		}
	}
	// Recurse into non-aggregate composites.
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		if err := collectAggCalls(x.L, b, aggs, index); err != nil {
			return err
		}
		return collectAggCalls(x.R, b, aggs, index)
	case *sqlparser.UnaryExpr:
		return collectAggCalls(x.E, b, aggs, index)
	case *sqlparser.IsNullExpr:
		return collectAggCalls(x.E, b, aggs, index)
	case *sqlparser.BetweenExpr:
		if err := collectAggCalls(x.E, b, aggs, index); err != nil {
			return err
		}
		if err := collectAggCalls(x.Lo, b, aggs, index); err != nil {
			return err
		}
		return collectAggCalls(x.Hi, b, aggs, index)
	case *sqlparser.CaseExpr:
		if x.Operand != nil {
			if err := collectAggCalls(x.Operand, b, aggs, index); err != nil {
				return err
			}
		}
		for _, w := range x.Whens {
			if err := collectAggCalls(w.When, b, aggs, index); err != nil {
				return err
			}
			if err := collectAggCalls(w.Then, b, aggs, index); err != nil {
				return err
			}
		}
		if x.Else != nil {
			return collectAggCalls(x.Else, b, aggs, index)
		}
	case *sqlparser.CastExpr:
		return collectAggCalls(x.E, b, aggs, index)
	case *sqlparser.InExpr:
		if err := collectAggCalls(x.E, b, aggs, index); err != nil {
			return err
		}
		for _, i := range x.List {
			if err := collectAggCalls(i, b, aggs, index); err != nil {
				return err
			}
		}
	case *sqlparser.FuncCall:
		for _, a := range x.Args {
			if err := collectAggCalls(a, b, aggs, index); err != nil {
				return err
			}
		}
	}
	return nil
}

// bindAggCall compiles one aggregate invocation and its canonical key.
func bindAggCall(fc *sqlparser.FuncCall, kind AggKind, b *binder) (AggCall, string, error) {
	call := AggCall{Kind: kind, Distinct: fc.Distinct}
	if fc.Star {
		if kind != AggCount {
			return call, "", fmt.Errorf("plan: %s(*) is not valid; only COUNT(*)", fc.Name)
		}
		call.Kind = AggCountStar
		call.K = types.KindInt64
		return call, "COUNT(*)", nil
	}
	if len(fc.Args) != 1 {
		return call, "", fmt.Errorf("plan: %s takes exactly one argument", fc.Name)
	}
	if containsAgg(fc.Args[0]) {
		return call, "", fmt.Errorf("plan: aggregates cannot be nested")
	}
	arg, err := b.bind(fc.Args[0])
	if err != nil {
		return call, "", err
	}
	call.Arg = arg
	switch kind {
	case AggCount:
		call.K = types.KindInt64
	case AggSum:
		if !arg.Kind().IsNumeric() && arg.Kind() != types.KindInterval && arg.Kind() != types.KindNull {
			return call, "", fmt.Errorf("plan: SUM requires a numeric argument, got %s", arg.Kind())
		}
		call.K = arg.Kind()
	case AggAvg:
		if !arg.Kind().IsNumeric() && arg.Kind() != types.KindNull {
			return call, "", fmt.Errorf("plan: AVG requires a numeric argument, got %s", arg.Kind())
		}
		call.K = types.KindFloat64
	case AggMin, AggMax:
		call.K = arg.Kind()
	}
	canon := fmt.Sprintf("%s|%v|%s", kind, fc.Distinct, arg.String())
	return call, canon, nil
}

// aggRewriter rebinds expressions over the aggregate's output row: grouping
// expressions map to key columns, aggregate calls map to aggregate columns,
// and anything else referencing input columns is an error.
type aggRewriter struct {
	b        *binder
	keys     []Scalar
	nKeys    int
	aggs     []AggCall
	aggIndex map[string]int
	aggSch   *types.Schema
}

func (r *aggRewriter) rewrite(e sqlparser.Expr) (Scalar, error) {
	// A whole expression that matches a grouping key becomes a key column
	// reference.
	if s, err := r.b.bind(e); err == nil {
		canon := s.String()
		for i, k := range r.keys {
			if k.String() == canon {
				return &ColRef{Idx: i, Name: r.aggSch.Cols[i].Name, K: r.aggSch.Cols[i].Kind}, nil
			}
		}
		if IsConst(s) {
			return s, nil
		}
	}
	switch x := e.(type) {
	case *sqlparser.FuncCall:
		if kind, isAgg := aggKinds[x.Name]; isAgg {
			_, canon, err := bindAggCall(x, kind, r.b)
			if err != nil {
				return nil, err
			}
			idx, ok := r.aggIndex[canon]
			if !ok {
				return nil, fmt.Errorf("plan: internal: aggregate %s not collected", canon)
			}
			pos := r.nKeys + idx
			return &ColRef{Idx: pos, Name: r.aggSch.Cols[pos].Name, K: r.aggSch.Cols[pos].Kind}, nil
		}
		args := make([]Scalar, len(x.Args))
		for i, a := range x.Args {
			s, err := r.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = s
		}
		return NewCall(x.Name, args)
	case *sqlparser.BinaryExpr:
		l, err := r.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return NewBinOp(x.Op, l, rr)
	case *sqlparser.UnaryExpr:
		in, err := r.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		if x.Neg {
			return &Neg{E: in}, nil
		}
		return &Not{E: in}, nil
	case *sqlparser.IsNullExpr:
		in, err := r.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: in, Not: x.Not}, nil
	case *sqlparser.CastExpr:
		in, err := r.rewrite(x.E)
		if err != nil {
			return nil, err
		}
		return &Cast{E: in, To: x.To}, nil
	case *sqlparser.CaseExpr:
		cb := &caseRewriteBinder{r}
		return cb.bindCase(x)
	case *sqlparser.Literal:
		return &Const{Val: x.Val}, nil
	case *sqlparser.ColumnRef:
		return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", x)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T in aggregate query", e)
	}
}

// caseRewriteBinder adapts aggRewriter for CASE desugaring reuse.
type caseRewriteBinder struct {
	r *aggRewriter
}

func (cb *caseRewriteBinder) bindCase(x *sqlparser.CaseExpr) (Scalar, error) {
	c := &Case{}
	var operand Scalar
	var err error
	if x.Operand != nil {
		operand, err = cb.r.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	resultKind := types.KindNull
	for _, w := range x.Whens {
		cond, err := cb.r.rewrite(w.When)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond, err = NewBinOp(sqlparser.OpEq, operand, cond)
			if err != nil {
				return nil, err
			}
		}
		then, err := cb.r.rewrite(w.Then)
		if err != nil {
			return nil, err
		}
		if resultKind == types.KindNull {
			resultKind = then.Kind()
		}
		c.Whens = append(c.Whens, CaseWhen{When: cond, Then: then})
	}
	if x.Else != nil {
		c.Else, err = cb.r.rewrite(x.Else)
		if err != nil {
			return nil, err
		}
		if resultKind == types.KindNull {
			resultKind = c.Else.Kind()
		}
	}
	c.K = resultKind
	return c, nil
}
