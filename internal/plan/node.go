package plan

import (
	"fmt"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Node is one logical operator in a query plan. Every node maps an input TVR
// (or two) to an output TVR pointwise, except where event-time semantics
// deliberately extend the algebra (watermark-driven grouping and EMIT).
type Node interface {
	// Schema describes the node's output relation, including event-time
	// column alignment metadata.
	Schema() *types.Schema
	// Unbounded reports whether the output relation may keep evolving
	// forever (it scans at least one stream that is not snapshot-bounded).
	Unbounded() bool
	// Children returns the input nodes.
	Children() []Node
	// Describe renders a one-line description of this operator.
	Describe() string
}

// Format renders an indented plan tree for debugging and EXPLAIN output.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Scan reads a catalog relation. AsOf, when non-nil, bounds the scan to the
// relation's snapshot at that processing time (AS OF SYSTEM TIME).
type Scan struct {
	Name   string
	Sch    *types.Schema
	Stream bool
	AsOf   *types.Time
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.Sch }

// Unbounded implements Node.
func (s *Scan) Unbounded() bool { return s.Stream && s.AsOf == nil }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	d := "Scan(" + s.Name
	if s.AsOf != nil {
		d += fmt.Sprintf(" AS OF %s", *s.AsOf)
	}
	return d + ")"
}

// Filter keeps rows for which Cond evaluates to TRUE.
type Filter struct {
	Input Node
	Cond  Scalar
}

// Schema implements Node.
func (f *Filter) Schema() *types.Schema { return f.Input.Schema() }

// Unbounded implements Node.
func (f *Filter) Unbounded() bool { return f.Input.Unbounded() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter(" + f.Cond.String() + ")" }

// Project computes one output column per expression.
type Project struct {
	Input Node
	Exprs []Scalar
	Sch   *types.Schema
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema { return p.Sch }

// Unbounded implements Node.
func (p *Project) Unbounded() bool { return p.Input.Unbounded() }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String() + " AS " + p.Sch.Cols[i].Name
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join combines two inputs. Equi-join keys (extracted from the conjunctive
// equality predicates of the join condition) index the operator's hash
// state; Residual is the remaining predicate over the concatenated row.
type Join struct {
	Left, Right Node
	Kind        sqlparser.JoinKind
	LeftKeys    []int // column indexes in Left's schema
	RightKeys   []int // column indexes in Right's schema, parallel to LeftKeys
	Residual    Scalar
	Sch         *types.Schema

	// LeftExpiry/RightExpiry, when set by the optimizer, allow the join
	// to free a stored row once the opposite watermark passes the row's
	// event-time column value plus the bound (interval-join cleanup).
	LeftExpiry  *ExpiryBound
	RightExpiry *ExpiryBound
}

// ExpiryBound says rows are dead once watermark >= row[Col] + Bound.
type ExpiryBound struct {
	Col   int
	Bound types.Duration
}

// Schema implements Node.
func (j *Join) Schema() *types.Schema { return j.Sch }

// Unbounded implements Node.
func (j *Join) Unbounded() bool { return j.Left.Unbounded() || j.Right.Unbounded() }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	var sb strings.Builder
	sb.WriteString("Join(" + j.Kind.String())
	for i := range j.LeftKeys {
		fmt.Fprintf(&sb, " L$%d=R$%d", j.LeftKeys[i], j.RightKeys[i])
	}
	if j.Residual != nil {
		sb.WriteString(" residual=" + j.Residual.String())
	}
	if j.LeftExpiry != nil {
		fmt.Fprintf(&sb, " lexp=$%d+%s", j.LeftExpiry.Col, j.LeftExpiry.Bound)
	}
	if j.RightExpiry != nil {
		fmt.Fprintf(&sb, " rexp=$%d+%s", j.RightExpiry.Col, j.RightExpiry.Bound)
	}
	sb.WriteString(")")
	return sb.String()
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate function kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggCountStar
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggCountStar:
		return "COUNT(*)"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	default:
		return "MAX"
	}
}

// AggCall is one aggregate computation.
type AggCall struct {
	Kind     AggKind
	Arg      Scalar // nil for COUNT(*)
	Distinct bool
	K        types.Kind // result kind
}

// Describe renders the call.
func (a AggCall) Describe() string {
	if a.Kind == AggCountStar {
		return "COUNT(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Kind, d, a.Arg.String())
}

// Aggregate groups its input by the key expressions and computes the
// aggregate calls per group. Output schema is keys followed by aggregates.
// When the input is unbounded, at least one key must be an event-time column
// (Extension 2); the execution engine uses the watermark to declare groups
// complete, drop late input, and free per-group state.
type Aggregate struct {
	Input Node
	Keys  []Scalar
	Aggs  []AggCall
	Sch   *types.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() *types.Schema { return a.Sch }

// Unbounded implements Node.
func (a *Aggregate) Unbounded() bool { return a.Input.Unbounded() }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	keys := make([]string, len(a.Keys))
	for i, k := range a.Keys {
		keys[i] = k.String()
	}
	aggs := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		aggs[i] = g.Describe()
	}
	return "Aggregate(keys=[" + strings.Join(keys, ", ") + "] aggs=[" + strings.Join(aggs, ", ") + "])"
}

// EventKeyIdxs returns the output-schema positions of event-time grouping
// keys (the columns the watermark can complete).
func (a *Aggregate) EventKeyIdxs() []int {
	var out []int
	for i := range a.Keys {
		if a.Sch.Cols[i].EventTime {
			out = append(out, i)
		}
	}
	return out
}

// Global reports whether this is a global (keyless) aggregation, which by
// SQL semantics always produces exactly one row.
func (a *Aggregate) Global() bool { return len(a.Keys) == 0 }

// WindowFn enumerates windowing table-valued functions.
type WindowFn uint8

// Windowing TVFs (Extension 3 plus the Session future-work extension).
const (
	TumbleFn WindowFn = iota
	HopFn
	SessionFn
)

func (f WindowFn) String() string {
	switch f {
	case TumbleFn:
		return "Tumble"
	case HopFn:
		return "Hop"
	default:
		return "Session"
	}
}

// WindowTVF augments each input row with wstart/wend event-time interval
// columns per the windowing function's assignment.
type WindowTVF struct {
	Input   Node
	Fn      WindowFn
	TimeIdx int // event-time column of Input used for assignment
	Dur     types.Duration
	Slide   types.Duration // Hop only
	Gap     types.Duration // Session only
	Offset  types.Duration
	Sch     *types.Schema
}

// Schema implements Node.
func (w *WindowTVF) Schema() *types.Schema { return w.Sch }

// Unbounded implements Node.
func (w *WindowTVF) Unbounded() bool { return w.Input.Unbounded() }

// Children implements Node.
func (w *WindowTVF) Children() []Node { return []Node{w.Input} }

// Describe implements Node.
func (w *WindowTVF) Describe() string {
	switch w.Fn {
	case TumbleFn:
		return fmt.Sprintf("Tumble($%d, %s, offset=%s)", w.TimeIdx, w.Dur, w.Offset)
	case HopFn:
		return fmt.Sprintf("Hop($%d, %s, slide=%s, offset=%s)", w.TimeIdx, w.Dur, w.Slide, w.Offset)
	default:
		return fmt.Sprintf("Session($%d, gap=%s)", w.TimeIdx, w.Gap)
	}
}

// WstartIdx and WendIdx locate the appended window columns.
func (w *WindowTVF) WstartIdx() int { return len(w.Sch.Cols) - 2 }

// WendIdx locates the appended wend column.
func (w *WindowTVF) WendIdx() int { return len(w.Sch.Cols) - 1 }

// Union concatenates inputs (UNION ALL). Distinct UNION is planned as
// Distinct over Union.
type Union struct {
	Inputs []Node
	Sch    *types.Schema
}

// Schema implements Node.
func (u *Union) Schema() *types.Schema { return u.Sch }

// Unbounded implements Node.
func (u *Union) Unbounded() bool {
	for _, in := range u.Inputs {
		if in.Unbounded() {
			return true
		}
	}
	return false
}

// Children implements Node.
func (u *Union) Children() []Node { return u.Inputs }

// Describe implements Node.
func (u *Union) Describe() string { return fmt.Sprintf("UnionAll(%d inputs)", len(u.Inputs)) }

// SetOp computes INTERSECT or EXCEPT (with bag semantics when All is set).
type SetOp struct {
	Op          sqlparser.SetOpKind // Intersect or Except
	All         bool
	Left, Right Node
	Sch         *types.Schema
}

// Schema implements Node.
func (s *SetOp) Schema() *types.Schema { return s.Sch }

// Unbounded implements Node.
func (s *SetOp) Unbounded() bool { return s.Left.Unbounded() || s.Right.Unbounded() }

// Children implements Node.
func (s *SetOp) Children() []Node { return []Node{s.Left, s.Right} }

// Describe implements Node.
func (s *SetOp) Describe() string {
	d := s.Op.String()
	if s.All {
		d += " ALL"
	}
	return "SetOp(" + d + ")"
}

// Distinct removes duplicate rows (bag -> set).
type Distinct struct {
	Input Node
}

// Schema implements Node.
func (d *Distinct) Schema() *types.Schema { return d.Input.Schema() }

// Unbounded implements Node.
func (d *Distinct) Unbounded() bool { return d.Input.Unbounded() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// Values is a constant relation (used for FROM-less SELECTs).
type Values struct {
	Rows []types.Row
	Sch  *types.Schema
}

// Schema implements Node.
func (v *Values) Schema() *types.Schema { return v.Sch }

// Unbounded implements Node.
func (v *Values) Unbounded() bool { return false }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// Describe implements Node.
func (v *Values) Describe() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// SortKey is one presentation-order key.
type SortKey struct {
	Col  int
	Desc bool
}

// EmitSpec captures the query's EMIT clause (Extensions 4-7) after
// validation. The zero value means default materialization.
type EmitSpec struct {
	// Stream selects the changelog rendering (EMIT STREAM).
	Stream bool
	// AfterWatermark delays materialization until groups are complete.
	AfterWatermark bool
	// Delay, when non-nil, coalesces updates per group into periodic
	// materializations (EMIT AFTER DELAY).
	Delay *types.Duration
}

// PlannedQuery is the planner's result: a logical plan plus presentation
// (ORDER BY / LIMIT apply to table rendering) and materialization control.
type PlannedQuery struct {
	Root    Node
	OrderBy []SortKey
	Limit   *int64
	Emit    EmitSpec
	// EmitKeyIdxs identifies the event-time grouping columns of the
	// result, used for changelog version numbers and EMIT grouping. Empty
	// means the whole result is one group.
	EmitKeyIdxs []int
}
