package plan

// Tests for the hash-partitioning analysis: which plans partition, on which
// scan columns, and why the rest must run serially.

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
)

func derive(t *testing.T, sql string) (*Partitioning, error) {
	t.Helper()
	return DerivePartitioning(mustPlan(t, sql))
}

// deriveUnbounded plans with the Extension 2 escape hatch (for shapes that
// group an unbounded stream by a non-event-time key).
func deriveUnbounded(t *testing.T, sql string) (*Partitioning, error) {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pq, err := plannerFor(t, Config{AllowUnboundedGroupBy: true}).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return DerivePartitioning(pq)
}

func mustDerive(t *testing.T, sql string) *Partitioning {
	t.Helper()
	p, err := derive(t, sql)
	if err != nil {
		t.Fatalf("derive %q: %v", sql, err)
	}
	return p
}

// TestPartitionStatelessRoundRobin: plans without stateful operators may be
// routed freely.
func TestPartitionStatelessRoundRobin(t *testing.T) {
	p := mustDerive(t, `SELECT item, price * 2 FROM Bid WHERE price > 3`)
	if !p.RoundRobin {
		t.Fatalf("expected round-robin, got %s", p.Describe())
	}
}

// TestPartitionGroupByKey: grouped aggregation hashes the scan-backed
// grouping keys; the appended window columns contribute nothing.
func TestPartitionGroupByKey(t *testing.T) {
	p := mustDerive(t, `
		SELECT item, wend, SUM(price)
		FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES)
		GROUP BY item, wend`)
	if p.RoundRobin {
		t.Fatal("expected a hash assignment")
	}
	// item is Bid's column 2; wend has no scan provenance.
	if got := p.Describe(); got != "hash(Bid:[2])" {
		t.Errorf("Describe() = %q, want hash(Bid:[2])", got)
	}
}

// TestPartitionJoinCoPartitions: equi joins co-partition both scans on the
// paired key columns.
func TestPartitionJoinCoPartitions(t *testing.T) {
	p := mustDerive(t, `
		SELECT B.item, C.name FROM Bid B JOIN Category C ON B.price = C.id`)
	if got := p.Describe(); got != "hash(Bid:[1]), hash(Category:[0])" {
		t.Errorf("Describe() = %q", got)
	}
}

// TestPartitionAggOverJoinChecksCompatibility: an aggregation above a join
// keeps the single-stage partitioning when its grouping keys preserve the
// join key; a re-keying aggregation splits into partial/final stages instead.
func TestPartitionAggOverJoinChecksCompatibility(t *testing.T) {
	// Compatible: grouping includes the join key column — one stage.
	p, err := deriveUnbounded(t, `
		SELECT Q.id, COUNT(*) FROM
		(SELECT C.id id, B.item item FROM Bid B JOIN Category C ON B.price = C.id) Q
		GROUP BY Q.id, Q.item`)
	if err != nil {
		t.Fatalf("compatible grouping should partition: %v", err)
	}
	if p.IsTwoStage() {
		t.Errorf("compatible grouping should stay single-stage, got %s", p.Describe())
	}

	// Incompatible: grouping by a non-key column would split join groups
	// across partitions, so the aggregate becomes partial/final: the join
	// keeps its hash routing inside the chains and the final merge runs in
	// the serial tail.
	p, err = deriveUnbounded(t, `
		SELECT Q.item, COUNT(*) FROM
		(SELECT C.id id, B.item item FROM Bid B JOIN Category C ON B.price = C.id) Q
		GROUP BY Q.item`)
	if err != nil {
		t.Fatalf("re-keying grouping should go two-stage: %v", err)
	}
	if !p.IsTwoStage() {
		t.Errorf("re-keying grouping should be two-stage, got %s", p.Describe())
	}
	if got := p.Describe(); !strings.HasPrefix(got, "two-stage(1) ") {
		t.Errorf("Describe() = %q, want two-stage(1) prefix", got)
	}
	if cuts := p.CutNodes(); len(cuts) != 1 {
		t.Errorf("CutNodes() = %d nodes, want 1 (the two-stage aggregate)", len(cuts))
	} else if _, ok := cuts[0].(*Aggregate); !ok {
		t.Errorf("cut node is %T, want *Aggregate", cuts[0])
	}
}

// TestPartitionTwoStageNoHashableKey: an aggregate with no scan-backed
// grouping key (grouping only by derived window columns, or no keys at all)
// splits into partial/final stages with the scan routed by full-row hash, the
// sub-bag property MIN/MAX need for retraction correctness.
func TestPartitionTwoStageNoHashableKey(t *testing.T) {
	for name, sql := range map[string]string{
		"global aggregate": `SELECT COUNT(*), MAX(price) FROM Bid`,
		"grouping by expression only": `
			SELECT wend, COUNT(*)
			FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES)
			GROUP BY wend`,
	} {
		p, err := derive(t, sql)
		if err != nil {
			t.Errorf("%s: expected two-stage partitioning, got error: %v", name, err)
			continue
		}
		if !p.IsTwoStage() {
			t.Errorf("%s: expected two-stage, got %s", name, p.Describe())
		}
		// Full-row hashing lists every Bid column.
		if got := p.Describe(); !strings.Contains(got, "hash(Bid:[0 1 2])") {
			t.Errorf("%s: Describe() = %q, want a full-row Bid hash", name, got)
		}
	}
}

// TestPartitionTwoStageRequiresMergeableAggs: aggregate calls without an
// exactly-merging partial form (DISTINCT, floating-point sums) keep the plan
// serial.
func TestPartitionTwoStageRequiresMergeableAggs(t *testing.T) {
	for name, sql := range map[string]string{
		"distinct count": `
			SELECT Q.item, COUNT(DISTINCT Q.id) FROM
			(SELECT C.id id, B.item item FROM Bid B JOIN Category C ON B.price = C.id) Q
			GROUP BY Q.item`,
		"float sum": `SELECT SUM(price * 0.5) FROM Bid`,
		"float avg": `SELECT AVG(price * 0.5) FROM Bid`,
	} {
		if _, err := deriveUnbounded(t, sql); err == nil {
			t.Errorf("%s: expected serial fallback", name)
		}
	}
}

// TestPartitionRejectsGlobalShapes: constant relations and set operations are
// inherently global (they emit at open time or cannot be co-partitioned).
func TestPartitionRejectsGlobalShapes(t *testing.T) {
	for name, sql := range map[string]string{
		"values":    `SELECT 1 + 2`,
		"union":     `SELECT item FROM Bid UNION ALL SELECT name FROM Category`,
		"intersect": `SELECT item FROM Bid INTERSECT SELECT name FROM Category`,
	} {
		if _, err := derive(t, sql); err == nil {
			t.Errorf("%s: expected serial fallback", name)
		}
	}
}

// TestPartitionDistinctHashesRow: DISTINCT constrains routing to the
// scan-backed output columns (equal rows must co-locate).
func TestPartitionDistinctHashesRow(t *testing.T) {
	p := mustDerive(t, `SELECT DISTINCT item, price FROM Bid`)
	if got := p.Describe(); !strings.HasPrefix(got, "hash(Bid:") {
		t.Errorf("Describe() = %q, want a Bid hash assignment", got)
	}
}

// TestPartitionDistinctRequiresSurvivingKey: DISTINCT above a projection that
// drops the partition-key columns cannot run inside the chains — equal
// projected rows could hash to different partitions and each emit the row
// once (this shape produced duplicate rows before the check). The input
// subtree is cut instead: it stays partitioned on the join key and DISTINCT
// runs serially in the tail over the merged stream.
func TestPartitionDistinctRequiresSurvivingKey(t *testing.T) {
	p, err := derive(t, `
		SELECT DISTINCT B.item FROM Bid B JOIN Category C ON B.price = C.id`)
	if err != nil {
		t.Fatalf("key-dropping DISTINCT should cut to a serial tail: %v", err)
	}
	if got := len(p.CutNodes()); got != 1 {
		t.Errorf("CutNodes() = %d, want 1 (the projection below DISTINCT)", got)
	}
	if p.IsTwoStage() {
		t.Errorf("DISTINCT cut is not a two-stage aggregate: %s", p.Describe())
	}
	// Keeping the key column keeps DISTINCT inside the chains (no cut).
	p, err = derive(t, `
		SELECT DISTINCT B.item, B.price FROM Bid B JOIN Category C ON B.price = C.id`)
	if err != nil {
		t.Fatalf("key-preserving DISTINCT should partition: %v", err)
	}
	if cuts := p.CutNodes(); len(cuts) != 1 || cuts[0] != p.root {
		t.Errorf("key-preserving DISTINCT should be a whole-plan chain, got %d cuts", len(cuts))
	}
}
