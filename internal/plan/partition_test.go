package plan

// Tests for the hash-partitioning analysis: which plans partition, on which
// scan columns, and why the rest must run serially.

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
)

func derive(t *testing.T, sql string) (*Partitioning, error) {
	t.Helper()
	return DerivePartitioning(mustPlan(t, sql))
}

// deriveUnbounded plans with the Extension 2 escape hatch (for shapes that
// group an unbounded stream by a non-event-time key).
func deriveUnbounded(t *testing.T, sql string) (*Partitioning, error) {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pq, err := plannerFor(t, Config{AllowUnboundedGroupBy: true}).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return DerivePartitioning(pq)
}

func mustDerive(t *testing.T, sql string) *Partitioning {
	t.Helper()
	p, err := derive(t, sql)
	if err != nil {
		t.Fatalf("derive %q: %v", sql, err)
	}
	return p
}

// TestPartitionStatelessRoundRobin: plans without stateful operators may be
// routed freely.
func TestPartitionStatelessRoundRobin(t *testing.T) {
	p := mustDerive(t, `SELECT item, price * 2 FROM Bid WHERE price > 3`)
	if !p.RoundRobin {
		t.Fatalf("expected round-robin, got %s", p.Describe())
	}
}

// TestPartitionGroupByKey: grouped aggregation hashes the scan-backed
// grouping keys; the appended window columns contribute nothing.
func TestPartitionGroupByKey(t *testing.T) {
	p := mustDerive(t, `
		SELECT item, wend, SUM(price)
		FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES)
		GROUP BY item, wend`)
	if p.RoundRobin {
		t.Fatal("expected a hash assignment")
	}
	// item is Bid's column 2; wend has no scan provenance.
	if got := p.Describe(); got != "hash(Bid:[2])" {
		t.Errorf("Describe() = %q, want hash(Bid:[2])", got)
	}
}

// TestPartitionJoinCoPartitions: equi joins co-partition both scans on the
// paired key columns.
func TestPartitionJoinCoPartitions(t *testing.T) {
	p := mustDerive(t, `
		SELECT B.item, C.name FROM Bid B JOIN Category C ON B.price = C.id`)
	if got := p.Describe(); got != "hash(Bid:[1]), hash(Category:[0])" {
		t.Errorf("Describe() = %q", got)
	}
}

// TestPartitionAggOverJoinChecksCompatibility: an aggregation above a join
// keeps the partitioning only when its grouping keys preserve the join key.
func TestPartitionAggOverJoinChecksCompatibility(t *testing.T) {
	// Compatible: grouping includes the join key column.
	if _, err := deriveUnbounded(t, `
		SELECT Q.id, COUNT(*) FROM
		(SELECT C.id id, B.item item FROM Bid B JOIN Category C ON B.price = C.id) Q
		GROUP BY Q.id, Q.item`); err != nil {
		t.Fatalf("compatible grouping should partition: %v", err)
	}

	// Incompatible: grouping by a non-key column would split join groups
	// across partitions.
	if _, err := deriveUnbounded(t, `
		SELECT Q.item, COUNT(*) FROM
		(SELECT C.id id, B.item item FROM Bid B JOIN Category C ON B.price = C.id) Q
		GROUP BY Q.item`); err == nil {
		t.Fatal("expected incompatible grouping to fail")
	}
}

// TestPartitionRejectsGlobalShapes: keyless aggregation, constant relations,
// and set operations are inherently global.
func TestPartitionRejectsGlobalShapes(t *testing.T) {
	for name, sql := range map[string]string{
		"global aggregate": `SELECT COUNT(*) FROM Bid`,
		"grouping by expression only": `
			SELECT wend, COUNT(*)
			FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES)
			GROUP BY wend`,
		"values":    `SELECT 1 + 2`,
		"union":     `SELECT item FROM Bid UNION ALL SELECT name FROM Category`,
		"intersect": `SELECT item FROM Bid INTERSECT SELECT name FROM Category`,
	} {
		if _, err := derive(t, sql); err == nil {
			t.Errorf("%s: expected serial fallback", name)
		}
	}
}

// TestPartitionDistinctHashesRow: DISTINCT constrains routing to the
// scan-backed output columns (equal rows must co-locate).
func TestPartitionDistinctHashesRow(t *testing.T) {
	p := mustDerive(t, `SELECT DISTINCT item, price FROM Bid`)
	if got := p.Describe(); !strings.HasPrefix(got, "hash(Bid:") {
		t.Errorf("Describe() = %q, want a Bid hash assignment", got)
	}
}

// TestPartitionDistinctRequiresSurvivingKey: DISTINCT above a projection
// that drops the partition-key columns must fall back — equal projected rows
// could otherwise hash to different partitions and each emit the row once
// (regression test: this shape produced duplicate rows before the check).
func TestPartitionDistinctRequiresSurvivingKey(t *testing.T) {
	// The join partitions on B.price = C.id, but only item survives the
	// projection, so equal (item) rows may carry different join keys.
	if _, err := derive(t, `
		SELECT DISTINCT B.item FROM Bid B JOIN Category C ON B.price = C.id`); err == nil {
		t.Fatal("expected serial fallback when the projection drops the partition key")
	}
	// Keeping the key column restores partitionability.
	if _, err := derive(t, `
		SELECT DISTINCT B.item, B.price FROM Bid B JOIN Category C ON B.price = C.id`); err != nil {
		t.Fatalf("key-preserving DISTINCT should partition: %v", err)
	}
}
