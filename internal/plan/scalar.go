package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// Scalar is a compiled scalar expression: column references are resolved to
// row indexes and the result kind is known statically. Scalars are evaluated
// by the execution engine once per row.
//
// Boolean-valued scalars follow SQL three-valued logic: they produce TRUE,
// FALSE, or NULL. Filters keep a row only when the condition is TRUE.
type Scalar interface {
	// Eval evaluates the expression against one row.
	Eval(row types.Row) (types.Value, error)
	// Kind returns the statically determined result kind.
	Kind() types.Kind
	// String renders a canonical form; two scalars are structurally equal
	// iff their strings are equal (used for GROUP BY matching).
	String() string
}

// ColRef reads a column by index.
type ColRef struct {
	Idx  int
	Name string
	K    types.Kind
}

// Eval implements Scalar.
func (c *ColRef) Eval(row types.Row) (types.Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return types.Null(), fmt.Errorf("plan: column index %d out of range (row width %d)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

// Kind implements Scalar.
func (c *ColRef) Kind() types.Kind { return c.K }

func (c *ColRef) String() string { return fmt.Sprintf("$%d", c.Idx) }

// Const is a literal value.
type Const struct {
	Val types.Value
}

// Eval implements Scalar.
func (c *Const) Eval(types.Row) (types.Value, error) { return c.Val, nil }

// Kind implements Scalar.
func (c *Const) Kind() types.Kind { return c.Val.Kind() }

func (c *Const) String() string { return c.Val.String() + ":" + c.Val.Kind().String() }

// BinOp applies a binary operator with SQL semantics (NULL propagation for
// arithmetic and comparisons, Kleene logic for AND/OR).
type BinOp struct {
	Op   sqlparser.BinOpKind
	L, R Scalar
	K    types.Kind
}

// NewBinOp type-checks and builds a binary operation.
func NewBinOp(op sqlparser.BinOpKind, l, r Scalar) (*BinOp, error) {
	k, err := binOpKind(op, l.Kind(), r.Kind())
	if err != nil {
		return nil, err
	}
	return &BinOp{Op: op, L: l, R: r, K: k}, nil
}

func binOpKind(op sqlparser.BinOpKind, l, r types.Kind) (types.Kind, error) {
	// NULL literals adopt the other operand's kind.
	if l == types.KindNull {
		l = r
	}
	if r == types.KindNull {
		r = l
	}
	switch op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		if (l == types.KindBool || l == types.KindNull) && (r == types.KindBool || r == types.KindNull) {
			return types.KindBool, nil
		}
		return 0, fmt.Errorf("plan: %s requires BOOLEAN operands, got %s and %s", op, l, r)
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		if l == types.KindNull && r == types.KindNull {
			return types.KindBool, nil
		}
		if l == r || (l.IsNumeric() && r.IsNumeric()) {
			return types.KindBool, nil
		}
		return 0, fmt.Errorf("plan: cannot compare %s with %s", l, r)
	case sqlparser.OpConcat:
		if (l == types.KindString || l == types.KindNull) && (r == types.KindString || r == types.KindNull) {
			return types.KindString, nil
		}
		return 0, fmt.Errorf("plan: || requires VARCHAR operands, got %s and %s", l, r)
	case sqlparser.OpAdd:
		switch {
		case l == types.KindInt64 && r == types.KindInt64:
			return types.KindInt64, nil
		case l.IsNumeric() && r.IsNumeric():
			return types.KindFloat64, nil
		case l == types.KindTimestamp && r == types.KindInterval,
			l == types.KindInterval && r == types.KindTimestamp:
			return types.KindTimestamp, nil
		case l == types.KindInterval && r == types.KindInterval:
			return types.KindInterval, nil
		case l == types.KindNull && r == types.KindNull:
			return types.KindNull, nil
		}
		return 0, fmt.Errorf("plan: cannot add %s and %s", l, r)
	case sqlparser.OpSub:
		switch {
		case l == types.KindInt64 && r == types.KindInt64:
			return types.KindInt64, nil
		case l.IsNumeric() && r.IsNumeric():
			return types.KindFloat64, nil
		case l == types.KindTimestamp && r == types.KindInterval:
			return types.KindTimestamp, nil
		case l == types.KindTimestamp && r == types.KindTimestamp:
			return types.KindInterval, nil
		case l == types.KindInterval && r == types.KindInterval:
			return types.KindInterval, nil
		case l == types.KindNull && r == types.KindNull:
			return types.KindNull, nil
		}
		return 0, fmt.Errorf("plan: cannot subtract %s from %s", r, l)
	case sqlparser.OpMul:
		switch {
		case l == types.KindInt64 && r == types.KindInt64:
			return types.KindInt64, nil
		case l.IsNumeric() && r.IsNumeric():
			return types.KindFloat64, nil
		case l == types.KindInterval && r.IsNumeric(), l.IsNumeric() && r == types.KindInterval:
			return types.KindInterval, nil
		case l == types.KindNull && r == types.KindNull:
			return types.KindNull, nil
		}
		return 0, fmt.Errorf("plan: cannot multiply %s and %s", l, r)
	case sqlparser.OpDiv:
		switch {
		case l == types.KindInt64 && r == types.KindInt64:
			return types.KindInt64, nil
		case l.IsNumeric() && r.IsNumeric():
			return types.KindFloat64, nil
		case l == types.KindInterval && r == types.KindInt64:
			return types.KindInterval, nil
		case l == types.KindNull && r == types.KindNull:
			return types.KindNull, nil
		}
		return 0, fmt.Errorf("plan: cannot divide %s by %s", l, r)
	default:
		return 0, fmt.Errorf("plan: unknown operator %v", op)
	}
}

// Eval implements Scalar.
func (b *BinOp) Eval(row types.Row) (types.Value, error) {
	switch b.Op {
	case sqlparser.OpAnd, sqlparser.OpOr:
		return b.evalLogic(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	switch b.Op {
	case sqlparser.OpAdd:
		return l.Add(r)
	case sqlparser.OpSub:
		return l.Sub(r)
	case sqlparser.OpMul:
		return l.Mul(r)
	case sqlparser.OpDiv:
		return l.Div(r)
	case sqlparser.OpConcat:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		return types.NewString(l.Str() + r.Str()), nil
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return types.Null(), err
		}
		var res bool
		switch b.Op {
		case sqlparser.OpEq:
			res = c == 0
		case sqlparser.OpNe:
			res = c != 0
		case sqlparser.OpLt:
			res = c < 0
		case sqlparser.OpLe:
			res = c <= 0
		case sqlparser.OpGt:
			res = c > 0
		case sqlparser.OpGe:
			res = c >= 0
		}
		return types.NewBool(res), nil
	default:
		return types.Null(), fmt.Errorf("plan: unknown operator %v", b.Op)
	}
}

// evalLogic implements Kleene three-valued AND/OR with short-circuiting.
func (b *BinOp) evalLogic(row types.Row) (types.Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	and := b.Op == sqlparser.OpAnd
	if !l.IsNull() {
		if and && !l.Bool() {
			return types.NewBool(false), nil
		}
		if !and && l.Bool() {
			return types.NewBool(true), nil
		}
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	if !r.IsNull() {
		if and && !r.Bool() {
			return types.NewBool(false), nil
		}
		if !and && r.Bool() {
			return types.NewBool(true), nil
		}
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	if and {
		return types.NewBool(l.Bool() && r.Bool()), nil
	}
	return types.NewBool(l.Bool() || r.Bool()), nil
}

// Kind implements Scalar.
func (b *BinOp) Kind() types.Kind { return b.K }

func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op.String() + " " + b.R.String() + ")"
}

// Not negates a boolean (NULL stays NULL).
type Not struct {
	E Scalar
}

// Eval implements Scalar.
func (n *Not) Eval(row types.Row) (types.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null(), err
	}
	return types.NewBool(!v.Bool()), nil
}

// Kind implements Scalar.
func (n *Not) Kind() types.Kind { return types.KindBool }

func (n *Not) String() string { return "(NOT " + n.E.String() + ")" }

// Neg is unary minus.
type Neg struct {
	E Scalar
}

// Eval implements Scalar.
func (n *Neg) Eval(row types.Row) (types.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	return v.Neg()
}

// Kind implements Scalar.
func (n *Neg) Kind() types.Kind { return n.E.Kind() }

func (n *Neg) String() string { return "(-" + n.E.String() + ")" }

// IsNull tests for SQL NULL (never returns NULL itself).
type IsNull struct {
	E   Scalar
	Not bool
}

// Eval implements Scalar.
func (i *IsNull) Eval(row types.Row) (types.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return types.Null(), err
	}
	return types.NewBool(v.IsNull() != i.Not), nil
}

// Kind implements Scalar.
func (i *IsNull) Kind() types.Kind { return types.KindBool }

func (i *IsNull) String() string {
	if i.Not {
		return "(" + i.E.String() + " IS NOT NULL)"
	}
	return "(" + i.E.String() + " IS NULL)"
}

// Case implements both searched and simple CASE (the planner desugars simple
// CASE into searched form).
type Case struct {
	Whens []CaseWhen
	Else  Scalar // nil means NULL
	K     types.Kind
}

// CaseWhen is one WHEN/THEN branch of a searched CASE.
type CaseWhen struct {
	When Scalar // boolean
	Then Scalar
}

// Eval implements Scalar.
func (c *Case) Eval(row types.Row) (types.Value, error) {
	for _, w := range c.Whens {
		v, err := w.When.Eval(row)
		if err != nil {
			return types.Null(), err
		}
		if !v.IsNull() && v.Bool() {
			return w.Then.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null(), nil
}

// Kind implements Scalar.
func (c *Case) Kind() types.Kind { return c.K }

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.When.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast converts between kinds at runtime.
type Cast struct {
	E  Scalar
	To types.Kind
}

// Eval implements Scalar.
func (c *Cast) Eval(row types.Row) (types.Value, error) {
	v, err := c.E.Eval(row)
	if err != nil || v.IsNull() {
		return types.Null(), err
	}
	if v.Kind() == c.To {
		return v, nil
	}
	switch c.To {
	case types.KindFloat64:
		if v.Kind() == types.KindInt64 {
			return types.NewFloat(float64(v.Int())), nil
		}
	case types.KindInt64:
		switch v.Kind() {
		case types.KindFloat64:
			return types.NewInt(int64(v.Float())), nil
		case types.KindBool:
			if v.Bool() {
				return types.NewInt(1), nil
			}
			return types.NewInt(0), nil
		}
	case types.KindString:
		return types.NewString(v.String()), nil
	case types.KindTimestamp:
		if v.Kind() == types.KindInt64 {
			return types.NewTimestamp(types.Time(v.Int())), nil
		}
	}
	return types.Null(), fmt.Errorf("plan: cannot cast %s to %s", v.Kind(), c.To)
}

// Kind implements Scalar.
func (c *Cast) Kind() types.Kind { return c.To }

func (c *Cast) String() string { return "CAST(" + c.E.String() + " AS " + c.To.String() + ")" }

// Call invokes a built-in scalar function.
type Call struct {
	Fn   string // canonical upper-case name
	Args []Scalar
	K    types.Kind
}

// scalarFuncs maps function names to (result-kind inference, evaluator).
var scalarFuncs = map[string]struct {
	minArgs, maxArgs int
	kind             func(args []Scalar) (types.Kind, error)
	eval             func(vals []types.Value) (types.Value, error)
}{
	"ABS": {1, 1, kindSameAsArg0Numeric, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		if v[0].Kind() == types.KindInt64 {
			if v[0].Int() < 0 {
				return types.NewInt(-v[0].Int()), nil
			}
			return v[0], nil
		}
		return types.NewFloat(math.Abs(v[0].AsFloat())), nil
	}},
	"FLOOR": {1, 1, kindSameAsArg0Numeric, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		if v[0].Kind() == types.KindInt64 {
			return v[0], nil
		}
		return types.NewFloat(math.Floor(v[0].AsFloat())), nil
	}},
	"CEIL": {1, 1, kindSameAsArg0Numeric, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		if v[0].Kind() == types.KindInt64 {
			return v[0], nil
		}
		return types.NewFloat(math.Ceil(v[0].AsFloat())), nil
	}},
	"SQRT": {1, 1, kindAlwaysFloat, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewFloat(math.Sqrt(v[0].AsFloat())), nil
	}},
	"MOD": {2, 2, kindAlwaysInt, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() || v[1].IsNull() {
			return types.Null(), nil
		}
		if v[1].Int() == 0 {
			return types.Null(), fmt.Errorf("plan: MOD by zero")
		}
		return types.NewInt(v[0].Int() % v[1].Int()), nil
	}},
	"COALESCE": {1, 16, kindFirstNonNullArg, func(v []types.Value) (types.Value, error) {
		for _, x := range v {
			if !x.IsNull() {
				return x, nil
			}
		}
		return types.Null(), nil
	}},
	"NULLIF": {2, 2, kindSameAsArg0, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		if !v[1].IsNull() && v[0].Equal(v[1]) {
			return types.Null(), nil
		}
		return v[0], nil
	}},
	"UPPER": {1, 1, kindAlwaysString, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewString(strings.ToUpper(v[0].Str())), nil
	}},
	"LOWER": {1, 1, kindAlwaysString, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewString(strings.ToLower(v[0].Str())), nil
	}},
	"CHAR_LENGTH": {1, 1, kindAlwaysInt, func(v []types.Value) (types.Value, error) {
		if v[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewInt(int64(len(v[0].Str()))), nil
	}},
	"CONCAT": {1, 16, kindAlwaysString, func(v []types.Value) (types.Value, error) {
		var sb strings.Builder
		for _, x := range v {
			if !x.IsNull() {
				sb.WriteString(x.String())
			}
		}
		return types.NewString(sb.String()), nil
	}},
	// TUMBLE_START/TUMBLE_END style helpers: scalar forms of window
	// assignment, useful in projections and for the CQL comparisons.
	"TUMBLE_START": {2, 3, kindAlwaysTimestamp, nil}, // evaluated specially below
	"TUMBLE_END":   {2, 3, kindAlwaysTimestamp, nil},
}

func kindSameAsArg0(args []Scalar) (types.Kind, error) { return args[0].Kind(), nil }

func kindSameAsArg0Numeric(args []Scalar) (types.Kind, error) {
	k := args[0].Kind()
	if !k.IsNumeric() && k != types.KindNull {
		return 0, fmt.Errorf("plan: numeric argument required, got %s", k)
	}
	return k, nil
}

func kindAlwaysFloat(d []Scalar) (types.Kind, error)     { return types.KindFloat64, nil }
func kindAlwaysInt(d []Scalar) (types.Kind, error)       { return types.KindInt64, nil }
func kindAlwaysString(d []Scalar) (types.Kind, error)    { return types.KindString, nil }
func kindAlwaysTimestamp(d []Scalar) (types.Kind, error) { return types.KindTimestamp, nil }

// NewCall type-checks and builds a scalar function call.
func NewCall(name string, args []Scalar) (*Call, error) {
	fn, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown function %s", name)
	}
	if len(args) < fn.minArgs || len(args) > fn.maxArgs {
		return nil, fmt.Errorf("plan: %s takes %d..%d arguments, got %d", name, fn.minArgs, fn.maxArgs, len(args))
	}
	k, err := fn.kind(args)
	if err != nil {
		return nil, err
	}
	return &Call{Fn: name, Args: args, K: k}, nil
}

func kindFirstNonNullArg(args []Scalar) (types.Kind, error) {
	for _, a := range args {
		if a.Kind() != types.KindNull {
			return a.Kind(), nil
		}
	}
	return types.KindNull, nil
}

// Eval implements Scalar.
func (c *Call) Eval(row types.Row) (types.Value, error) {
	vals := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Null(), err
		}
		vals[i] = v
	}
	switch c.Fn {
	case "TUMBLE_START", "TUMBLE_END":
		return evalTumbleScalar(c.Fn, vals)
	}
	return scalarFuncs[c.Fn].eval(vals)
}

func evalTumbleScalar(fn string, vals []types.Value) (types.Value, error) {
	if vals[0].IsNull() || vals[1].IsNull() {
		return types.Null(), nil
	}
	t := vals[0].Timestamp()
	dur := vals[1].Interval()
	var off types.Duration
	if len(vals) == 3 && !vals[2].IsNull() {
		off = vals[2].Interval()
	}
	if dur <= 0 {
		return types.Null(), fmt.Errorf("plan: %s requires positive duration", fn)
	}
	rel := int64(t) - int64(off)
	start := rel - ((rel%int64(dur))+int64(dur))%int64(dur)
	if fn == "TUMBLE_START" {
		return types.NewTimestamp(types.Time(start + int64(off))), nil
	}
	return types.NewTimestamp(types.Time(start + int64(off) + int64(dur))), nil
}

// Kind implements Scalar.
func (c *Call) Kind() types.Kind { return c.K }

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// EvalBool evaluates a boolean scalar for filtering: the row passes only if
// the result is non-NULL TRUE.
func EvalBool(s Scalar, row types.Row) (bool, error) {
	v, err := s.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}

// IsConst reports whether the scalar contains no column references, in which
// case it can be folded at plan time.
func IsConst(s Scalar) bool {
	switch e := s.(type) {
	case *Const:
		return true
	case *ColRef:
		return false
	case *BinOp:
		return IsConst(e.L) && IsConst(e.R)
	case *Not:
		return IsConst(e.E)
	case *Neg:
		return IsConst(e.E)
	case *IsNull:
		return IsConst(e.E)
	case *Cast:
		return IsConst(e.E)
	case *Call:
		for _, a := range e.Args {
			if !IsConst(a) {
				return false
			}
		}
		return true
	case *Case:
		for _, w := range e.Whens {
			if !IsConst(w.When) || !IsConst(w.Then) {
				return false
			}
		}
		return e.Else == nil || IsConst(e.Else)
	default:
		return false
	}
}
