package plan

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/types"
)

// testCatalog is a fixed catalog with the paper's Bid stream plus helpers.
type testCatalog map[string]*Relation

func (c testCatalog) Resolve(name string) (*Relation, error) {
	if r, ok := c[strings.ToLower(name)]; ok {
		return r, nil
	}
	return nil, fmt.Errorf("plan: relation %q not found", name)
}

func newTestCatalog() testCatalog {
	bid := &Relation{
		Name: "Bid",
		Schema: types.NewSchema(
			types.Column{Name: "bidtime", Kind: types.KindTimestamp, EventTime: true},
			types.Column{Name: "price", Kind: types.KindInt64},
			types.Column{Name: "item", Kind: types.KindString},
		),
		Unbounded: true,
	}
	static := &Relation{
		Name: "Category",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt64},
			types.Column{Name: "name", Kind: types.KindString},
		),
		Unbounded: false,
	}
	return testCatalog{"bid": bid, "category": static, "bids": bid}
}

func plannerFor(t *testing.T, cfg Config) *Planner {
	t.Helper()
	return New(newTestCatalog(), cfg)
}

func mustPlan(t *testing.T, sql string) *PlannedQuery {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pq, err := plannerFor(t, Config{}).Plan(q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return pq
}

func planErr(t *testing.T, sql string) error {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = plannerFor(t, Config{}).Plan(q)
	if err == nil {
		t.Fatalf("plan %q should fail", sql)
	}
	return err
}

func TestPlanSimpleProjectFilter(t *testing.T) {
	pq := mustPlan(t, "SELECT price, item FROM Bid WHERE price > 3")
	proj, ok := pq.Root.(*Project)
	if !ok {
		t.Fatalf("root = %T", pq.Root)
	}
	if proj.Sch.Len() != 2 || proj.Sch.Cols[0].Name != "price" {
		t.Fatalf("schema = %v", proj.Sch)
	}
	if _, ok := proj.Input.(*Filter); !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if !pq.Root.Unbounded() {
		t.Error("stream scan should be unbounded")
	}
}

func TestPlanEventTimePreservation(t *testing.T) {
	// Verbatim forwarding keeps the event-time flag.
	pq := mustPlan(t, "SELECT bidtime, price FROM Bid")
	sch := pq.Root.Schema()
	if !sch.Cols[0].EventTime {
		t.Error("bidtime should stay event-time")
	}
	// Arithmetic erases alignment (Section 5 lesson).
	pq = mustPlan(t, "SELECT bidtime + INTERVAL '1' MINUTE AS t2 FROM Bid")
	if pq.Root.Schema().Cols[0].EventTime {
		t.Error("modified timestamp must lose event-time alignment")
	}
	if pq.Root.Schema().Cols[0].Kind != types.KindTimestamp {
		t.Error("t2 should still be TIMESTAMP")
	}
}

func TestPlanTumbleSchema(t *testing.T) {
	pq := mustPlan(t, `SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) TB`)
	sch := pq.Root.Schema()
	if sch.Len() != 5 {
		t.Fatalf("schema = %v", sch)
	}
	ws := sch.Cols[3]
	we := sch.Cols[4]
	if ws.Name != "wstart" || !ws.EventTime || ws.WmOffset != 10*types.Minute {
		t.Errorf("wstart = %+v", ws)
	}
	if we.Name != "wend" || !we.EventTime || we.WmOffset != 0 {
		t.Errorf("wend = %+v", we)
	}
	// Emit grouping keys = the windowed columns (a row's window identity),
	// not every event-time column.
	if len(pq.EmitKeyIdxs) != 2 || pq.EmitKeyIdxs[0] != 3 || pq.EmitKeyIdxs[1] != 4 {
		t.Errorf("EmitKeyIdxs = %v, want [3 4]", pq.EmitKeyIdxs)
	}
}

func TestPlanPositionalTVFArgs(t *testing.T) {
	pq := mustPlan(t, `SELECT * FROM Tumble(TABLE(Bid), DESCRIPTOR(bidtime), INTERVAL '10' MINUTE)`)
	var w *WindowTVF
	var find func(Node)
	find = func(n Node) {
		if x, ok := n.(*WindowTVF); ok {
			w = x
		}
		for _, c := range n.Children() {
			find(c)
		}
	}
	find(pq.Root)
	if w == nil || w.Dur != 10*types.Minute {
		t.Fatalf("tvf = %+v", w)
	}
}

func TestPlanHopSession(t *testing.T) {
	pq := mustPlan(t, `SELECT * FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE, hopsize => INTERVAL '5' MINUTE)`)
	find := func(root Node) *WindowTVF {
		var w *WindowTVF
		var rec func(Node)
		rec = func(n Node) {
			if x, ok := n.(*WindowTVF); ok {
				w = x
			}
			for _, c := range n.Children() {
				rec(c)
			}
		}
		rec(root)
		return w
	}
	w := find(pq.Root)
	if w.Fn != HopFn || w.Slide != 5*types.Minute {
		t.Fatalf("hop = %+v", w)
	}
	pq = mustPlan(t, `SELECT * FROM Session(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), gap => INTERVAL '5' MINUTE)`)
	w = find(pq.Root)
	if w.Fn != SessionFn || w.Gap != 5*types.Minute {
		t.Fatalf("session = %+v", w)
	}
	// Session wstart must not be event-time (merges reuse old starts).
	sch := pq.Root.Schema()
	if sch.Cols[3].EventTime {
		t.Error("session wstart must not be event-time")
	}
	if !sch.Cols[4].EventTime {
		t.Error("session wend should be event-time")
	}
}

func TestPlanGroupByEventTime(t *testing.T) {
	pq := mustPlan(t, `SELECT MAX(wstart) wstart, wend, SUM(price) price
		FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE)
		GROUP BY wend`)
	proj := pq.Root.(*Project)
	agg, ok := proj.Input.(*Aggregate)
	if !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if len(agg.Keys) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg = %s", agg.Describe())
	}
	if len(agg.EventKeyIdxs()) != 1 {
		t.Fatalf("event keys = %v", agg.EventKeyIdxs())
	}
	// Output: wend is event-time; MAX(wstart) is not.
	sch := pq.Root.Schema()
	if sch.Cols[0].EventTime {
		t.Error("MAX(wstart) must not be event-time")
	}
	if !sch.Cols[1].EventTime {
		t.Error("wend key should stay event-time")
	}
	if sch.Cols[0].Name != "wstart" || sch.Cols[2].Name != "price" {
		t.Errorf("names = %v", sch.Names())
	}
}

func TestPlanExtension2Validation(t *testing.T) {
	err := planErr(t, "SELECT item, SUM(price) FROM Bid GROUP BY item")
	if !strings.Contains(err.Error(), "Extension 2") {
		t.Errorf("error = %v", err)
	}
	// Allowed on bounded tables.
	mustPlan(t, "SELECT name, COUNT(*) FROM Category GROUP BY name")
	// Allowed with the config escape hatch.
	q, _ := sqlparser.Parse("SELECT item, SUM(price) FROM Bid GROUP BY item")
	if _, err := New(newTestCatalog(), Config{AllowUnboundedGroupBy: true}).Plan(q); err != nil {
		t.Errorf("escape hatch failed: %v", err)
	}
	// Global aggregates are permitted (no GROUP BY clause).
	mustPlan(t, "SELECT MAX(price) FROM Bid")
}

func TestPlanPaperQuery7(t *testing.T) {
	sql := `
SELECT MaxBid.wstart wstart, MaxBid.wend wend, Bid.bidtime bidtime, Bid.price price, Bid.item item
FROM Bid,
  (SELECT MAX(TumbleBid.price) maxPrice, TumbleBid.wstart wstart, TumbleBid.wend wend
   FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) TumbleBid
   GROUP BY TumbleBid.wend, TumbleBid.wstart) MaxBid
WHERE Bid.price = MaxBid.maxPrice
  AND Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE
  AND Bid.bidtime < MaxBid.wend`
	pq := mustPlan(t, sql)
	sch := pq.Root.Schema()
	want := []string{"wstart", "wend", "bidtime", "price", "item"}
	for i, n := range want {
		if !strings.EqualFold(sch.Cols[i].Name, n) {
			t.Errorf("col %d = %q, want %q", i, sch.Cols[i].Name, n)
		}
	}
	if !sch.Cols[0].EventTime || !sch.Cols[1].EventTime || !sch.Cols[2].EventTime {
		t.Errorf("event-time flags lost: %s", sch)
	}
	if pq.Root.Unbounded() != true {
		t.Error("q7 is unbounded")
	}
}

func TestPlanScalarSubquery(t *testing.T) {
	pq := mustPlan(t, "SELECT item FROM Bid WHERE price = (SELECT MAX(price) FROM Bid)")
	// Shape: Project <- Filter <- CrossJoin(Scan, Aggregate).
	proj := pq.Root.(*Project)
	flt := proj.Input.(*Filter)
	join := flt.Input.(*Join)
	if join.Kind != sqlparser.CrossJoin {
		t.Fatalf("join kind = %v", join.Kind)
	}
	if _, ok := join.Right.(*Project); !ok {
		t.Fatalf("subquery side = %T", join.Right)
	}
}

func TestPlanEmitValidation(t *testing.T) {
	// AFTER WATERMARK needs an event-time output column.
	err := planErr(t, "SELECT price FROM Bid EMIT AFTER WATERMARK")
	if !strings.Contains(err.Error(), "event-time") {
		t.Errorf("error = %v", err)
	}
	pq := mustPlan(t, "SELECT bidtime, price FROM Bid EMIT STREAM AFTER WATERMARK")
	if !pq.Emit.Stream || !pq.Emit.AfterWatermark {
		t.Errorf("emit = %+v", pq.Emit)
	}
	pq = mustPlan(t, "SELECT bidtime, price FROM Bid EMIT STREAM AFTER DELAY INTERVAL '6' MINUTE")
	if pq.Emit.Delay == nil || *pq.Emit.Delay != 6*types.Minute {
		t.Errorf("delay = %+v", pq.Emit.Delay)
	}
	planErr(t, "SELECT bidtime FROM Bid EMIT STREAM AFTER DELAY INTERVAL '0' MINUTE")
	planErr(t, "SELECT bidtime FROM Bid ORDER BY bidtime EMIT STREAM")
	planErr(t, "SELECT bidtime FROM Bid LIMIT 3 EMIT STREAM")
	planErr(t, "SELECT * FROM (SELECT bidtime FROM Bid EMIT STREAM) x")
}

func TestPlanAsOf(t *testing.T) {
	pq := mustPlan(t, "SELECT * FROM Bid AS OF SYSTEM TIME TIMESTAMP '8:13'")
	scan := findScan(pq.Root)
	if scan.AsOf == nil || *scan.AsOf != types.ClockTime(8, 13) {
		t.Fatalf("asof = %+v", scan.AsOf)
	}
	if pq.Root.Unbounded() {
		t.Error("AS OF snapshot is bounded")
	}
	planErr(t, "SELECT * FROM Bid AS OF SYSTEM TIME price")
}

func findScan(n Node) *Scan {
	if s, ok := n.(*Scan); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

func TestPlanJoinKeyExtraction(t *testing.T) {
	pq := mustPlan(t, "SELECT * FROM Bid b JOIN Category c ON b.price = c.id AND b.item > c.name")
	var join *Join
	var rec func(Node)
	rec = func(n Node) {
		if j, ok := n.(*Join); ok {
			join = j
		}
		for _, ch := range n.Children() {
			rec(ch)
		}
	}
	rec(pq.Root)
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.LeftKeys) != 1 || join.LeftKeys[0] != 1 || join.RightKeys[0] != 0 {
		t.Fatalf("keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
	if join.Residual == nil {
		t.Fatal("residual missing")
	}
}

func TestPlanSetOps(t *testing.T) {
	pq := mustPlan(t, "SELECT item FROM Bid UNION ALL SELECT item FROM Bid")
	if _, ok := pq.Root.(*Union); !ok {
		t.Fatalf("root = %T", pq.Root)
	}
	pq = mustPlan(t, "SELECT name FROM Category UNION SELECT name FROM Category")
	if _, ok := pq.Root.(*Distinct); !ok {
		t.Fatalf("distinct union root = %T", pq.Root)
	}
	pq = mustPlan(t, "SELECT name FROM Category INTERSECT SELECT name FROM Category")
	if s, ok := pq.Root.(*SetOp); !ok || s.Op != sqlparser.Intersect {
		t.Fatalf("intersect root = %T", pq.Root)
	}
	planErr(t, "SELECT item, price FROM Bid UNION ALL SELECT item FROM Bid")
	planErr(t, "SELECT item FROM Bid UNION ALL SELECT bidtime FROM Bid")
}

func TestPlanOrderByLimit(t *testing.T) {
	pq := mustPlan(t, "SELECT item, price FROM Bid ORDER BY price DESC, 1 LIMIT 3")
	if len(pq.OrderBy) != 2 || !pq.OrderBy[0].Desc || pq.OrderBy[0].Col != 1 || pq.OrderBy[1].Col != 0 {
		t.Fatalf("order by = %+v", pq.OrderBy)
	}
	if pq.Limit == nil || *pq.Limit != 3 {
		t.Fatalf("limit = %v", pq.Limit)
	}
	planErr(t, "SELECT item FROM Bid ORDER BY nope")
	planErr(t, "SELECT item FROM Bid ORDER BY 5")
	planErr(t, "SELECT item FROM Bid LIMIT price")
}

func TestPlanErrors(t *testing.T) {
	cases := []string{
		"SELECT nope FROM Bid",
		"SELECT b.nope FROM Bid b",
		"SELECT price FROM Nothing",
		"SELECT price FROM Bid b1, Bid b2 WHERE price > 1", // ambiguous
		"SELECT SUM(item) FROM Bid GROUP BY bidtime",       // SUM over VARCHAR
		"SELECT price FROM Bid GROUP BY bidtime",           // not in group by
		"SELECT SUM(SUM(price)) FROM Bid GROUP BY bidtime", // nested agg
		"SELECT SUM(price) FROM Bid WHERE SUM(price) > 1",  // agg in where
		"SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(nope), dur => INTERVAL '1' MINUTE)",
		"SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(price), dur => INTERVAL '1' MINUTE)",
		"SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime))", // missing dur
		"SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => price)",
		"SELECT * FROM Nope(data => TABLE(Bid))",
		"SELECT price + item FROM Bid",
		"SELECT price AND item FROM Bid",
		"SELECT NOT price FROM Bid",
		"SELECT -item FROM Bid",
		"SELECT price FROM Bid WHERE item", // non-boolean where
		"SELECT COUNT(price, item) FROM Bid GROUP BY bidtime",
		"SELECT MAX(*) FROM Bid",
		"SELECT (SELECT price, item FROM Bid) FROM Bid", // non-scalar subquery
	}
	for _, sql := range cases {
		planErr(t, sql)
	}
}

func TestPlanFromlessSelect(t *testing.T) {
	pq := mustPlan(t, "SELECT 1 + 2 AS three, 'x' AS s")
	proj := pq.Root.(*Project)
	if _, ok := proj.Input.(*Values); !ok {
		t.Fatalf("input = %T", proj.Input)
	}
	if proj.Sch.Cols[0].Name != "three" || proj.Sch.Cols[1].Kind != types.KindString {
		t.Fatalf("schema = %v", proj.Sch)
	}
}

func TestPlanDistinct(t *testing.T) {
	pq := mustPlan(t, "SELECT DISTINCT item FROM Bid")
	if _, ok := pq.Root.(*Distinct); !ok {
		t.Fatalf("root = %T", pq.Root)
	}
}

func TestPlanFormat(t *testing.T) {
	pq := mustPlan(t, "SELECT item FROM Bid WHERE price > 1")
	out := Format(pq.Root)
	for _, want := range []string{"Project", "Filter", "Scan(Bid)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %s:\n%s", want, out)
		}
	}
}

func TestPlanCountDistinct(t *testing.T) {
	pq := mustPlan(t, `SELECT wend, COUNT(DISTINCT item) FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend`)
	proj := pq.Root.(*Project)
	agg := proj.Input.(*Aggregate)
	if !agg.Aggs[0].Distinct {
		t.Fatal("distinct flag lost")
	}
}

func TestPlanHavingAndExprOverAgg(t *testing.T) {
	pq := mustPlan(t, `SELECT wend, SUM(price) * 2 AS dbl
		FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE)
		GROUP BY wend HAVING COUNT(*) > 1`)
	proj := pq.Root.(*Project)
	flt, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("expected having filter, got %T", proj.Input)
	}
	agg := flt.Input.(*Aggregate)
	// SUM and COUNT(*) both collected.
	if len(agg.Aggs) != 2 {
		t.Fatalf("aggs = %v", agg.Aggs)
	}
	if proj.Sch.Cols[1].Name != "dbl" {
		t.Errorf("alias = %q", proj.Sch.Cols[1].Name)
	}
}
