// Package plan implements the logical planner and validator: it turns parsed
// SQL ASTs into trees of logical operators with compiled (index-resolved,
// type-checked) scalar expressions, tracking event-time alignment through
// every operator and enforcing the paper's streaming validity rules
// (Extension 2: grouping unbounded inputs requires an event-time key).
package plan

import "repro/internal/types"

// Catalog resolves relation names for the planner.
type Catalog interface {
	// Resolve returns the relation with the given (case-insensitive)
	// name, or an error if it does not exist.
	Resolve(name string) (*Relation, error)
}

// Relation is a catalog entry: a named TVR that queries can scan.
type Relation struct {
	// Name is the canonical relation name.
	Name string
	// Schema describes the relation's columns, including which are
	// watermarked event-time columns.
	Schema *types.Schema
	// Unbounded is true for streams (relations that never stop evolving)
	// and false for classic bounded tables. The distinction drives the
	// paper's Extension 2 validation.
	Unbounded bool
}

// Config adjusts planner validation.
type Config struct {
	// AllowUnboundedGroupBy disables the Extension 2 check that a GROUP
	// BY over an unbounded input must include an event-time grouping key.
	// It exists for experiments that deliberately demonstrate unbounded
	// state growth; production use should leave it false.
	AllowUnboundedGroupBy bool
}
