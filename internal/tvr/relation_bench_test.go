package tvr

// Micro-benchmark guarding the relation's keyed-apply hot path: folding a
// data event into the bag encodes the row key into the relation's reusable
// scratch buffer and looks the entry up allocation-free; the key string is
// only materialized when a row first enters the bag. Run with -benchmem.

import (
	"testing"

	"repro/internal/types"
)

// BenchmarkKeyedApply alternates inserts and deletes over a fixed working set
// of rows, the steady-state shape of a materialized aggregate output.
func BenchmarkKeyedApply(b *testing.B) {
	rows := make([]types.Row, 256)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i) * 1.5),
			types.NewString("abcdefghij"),
			types.NewTimestamp(types.Time(i * 1000)),
		}
	}
	r := NewRelation()
	for _, row := range rows {
		r.Insert(row) // keep one resident copy so deletes never underflow
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Insert a row, then delete that same copy on the next iteration.
		row := rows[(i/2)%len(rows)]
		if i%2 == 0 {
			r.Insert(row)
		} else if err := r.Delete(row); err != nil {
			b.Fatal(err)
		}
	}
}
