// Package tvr implements time-varying relations (TVRs), the paper's single
// semantic object underlying both tables and streams.
//
// A TVR is canonically encoded as a changelog: a processing-time-ordered
// sequence of events, each inserting or deleting one row, interleaved with
// watermark assertions about event-time completeness. Applying the prefix of
// a changelog up to processing time p to an empty bag yields the
// instantaneous relation at p — the "table" rendering. The changelog itself,
// decorated with undo/ptime/ver metadata, is the "stream" rendering
// (Extension 4 in the paper). The two are duals; package tvr provides both
// plus the conversions between them.
package tvr

import (
	"fmt"

	"repro/internal/types"
)

// EventKind discriminates changelog events.
type EventKind uint8

const (
	// Insert adds one copy of Row to the relation.
	Insert EventKind = iota
	// Delete removes one copy of Row from the relation (a retraction).
	Delete
	// Watermark asserts that no future event will insert a row whose
	// aligned event-time column value is earlier than Wm.
	Watermark
	// Heartbeat advances processing time without changing the relation;
	// it exists so processing-time timers (EMIT AFTER DELAY) fire
	// deterministically.
	Heartbeat
)

// String returns a short name for the kind.
func (k EventKind) String() string {
	switch k {
	case Insert:
		return "INSERT"
	case Delete:
		return "DELETE"
	case Watermark:
		return "WM"
	case Heartbeat:
		return "HB"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one element of a changelog.
type Event struct {
	// Ptime is the processing time at which the event occurred. Events
	// in a changelog are ordered by non-decreasing Ptime.
	Ptime types.Time
	// Kind says what the event does.
	Kind EventKind
	// Row is the affected row for Insert and Delete events.
	Row types.Row
	// Wm is the new watermark value for Watermark events.
	Wm types.Time
}

// InsertEvent builds an Insert event.
func InsertEvent(p types.Time, row types.Row) Event {
	return Event{Ptime: p, Kind: Insert, Row: row}
}

// DeleteEvent builds a Delete (retraction) event.
func DeleteEvent(p types.Time, row types.Row) Event {
	return Event{Ptime: p, Kind: Delete, Row: row}
}

// WatermarkEvent builds a Watermark event.
func WatermarkEvent(p types.Time, wm types.Time) Event {
	return Event{Ptime: p, Kind: Watermark, Wm: wm}
}

// HeartbeatEvent builds a Heartbeat event.
func HeartbeatEvent(p types.Time) Event {
	return Event{Ptime: p, Kind: Heartbeat}
}

// IsData reports whether the event changes the relation's contents.
func (e Event) IsData() bool { return e.Kind == Insert || e.Kind == Delete }

// String renders the event compactly, e.g. "8:08 INSERT (8:07, 2, A)".
func (e Event) String() string {
	switch e.Kind {
	case Insert, Delete:
		return fmt.Sprintf("%s %s %s", e.Ptime, e.Kind, e.Row)
	case Watermark:
		return fmt.Sprintf("%s WM -> %s", e.Ptime, e.Wm)
	default:
		return fmt.Sprintf("%s HB", e.Ptime)
	}
}

// Changelog is a processing-time-ordered sequence of events encoding a TVR.
type Changelog []Event

// Validate checks the two changelog invariants: ptimes are non-decreasing and
// watermarks are monotonically non-decreasing.
func (c Changelog) Validate() error {
	lastP := types.MinTime
	lastWM := types.MinTime
	for i, e := range c {
		if e.Ptime < lastP {
			return fmt.Errorf("tvr: event %d ptime %s precedes %s", i, e.Ptime, lastP)
		}
		lastP = e.Ptime
		if e.Kind == Watermark {
			if e.Wm < lastWM {
				return fmt.Errorf("tvr: event %d watermark %s regresses from %s", i, e.Wm, lastWM)
			}
			lastWM = e.Wm
		}
	}
	return nil
}

// SnapshotAt replays the changelog through processing time p (inclusive) and
// returns the instantaneous relation — the table rendering of the TVR at p.
func (c Changelog) SnapshotAt(p types.Time) (*Relation, error) {
	rel := NewRelation()
	for _, e := range c {
		if e.Ptime > p {
			break
		}
		switch e.Kind {
		case Insert:
			rel.Insert(e.Row)
		case Delete:
			if err := rel.Delete(e.Row); err != nil {
				return nil, err
			}
		}
	}
	return rel, nil
}

// WatermarkAt returns the relation watermark as of processing time p
// (inclusive), or types.MinTime if no watermark has been asserted yet.
func (c Changelog) WatermarkAt(p types.Time) types.Time {
	wm := types.MinTime
	for _, e := range c {
		if e.Ptime > p {
			break
		}
		if e.Kind == Watermark {
			wm = e.Wm
		}
	}
	return wm
}

// DataCount returns the number of Insert/Delete events, the "update volume"
// measure used by the materialization-delay experiments.
func (c Changelog) DataCount() int {
	n := 0
	for _, e := range c {
		if e.IsData() {
			n++
		}
	}
	return n
}
