package tvr

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
)

// This file implements checkpoint encoding for the tvr containers: events and
// changelogs, instantaneous relations, and the incremental stream renderer.
// Everything encodes deterministically (map-backed state is written in its
// explicit iteration order, or sorted by key where no order is tracked) so
// that checkpointing the same state twice yields identical bytes — the
// property the golden-file format tests pin down.

// event kind wire tags — independent of the in-memory EventKind values so the
// enum can be reordered without breaking old checkpoints.
const (
	evTagInsert    byte = 'I'
	evTagDelete    byte = 'D'
	evTagWatermark byte = 'W'
	evTagHeartbeat byte = 'H'
)

// SaveEvent writes one changelog event.
func SaveEvent(enc *checkpoint.Encoder, ev Event) {
	switch ev.Kind {
	case Insert:
		enc.String(string(evTagInsert))
	case Delete:
		enc.String(string(evTagDelete))
	case Watermark:
		enc.String(string(evTagWatermark))
	default:
		enc.String(string(evTagHeartbeat))
	}
	enc.Time(ev.Ptime)
	switch ev.Kind {
	case Insert, Delete:
		enc.Row(ev.Row)
	case Watermark:
		enc.Time(ev.Wm)
	}
}

// LoadEvent reads one changelog event.
func LoadEvent(dec *checkpoint.Decoder) (Event, error) {
	tag := dec.String()
	if err := dec.Err(); err != nil {
		return Event{}, err
	}
	ev := Event{Ptime: dec.Time()}
	switch tag {
	case string(evTagInsert):
		ev.Kind = Insert
		ev.Row = dec.Row()
	case string(evTagDelete):
		ev.Kind = Delete
		ev.Row = dec.Row()
	case string(evTagWatermark):
		ev.Kind = Watermark
		ev.Wm = dec.Time()
	case string(evTagHeartbeat):
		ev.Kind = Heartbeat
	default:
		return Event{}, fmt.Errorf("tvr: unknown event tag %q in checkpoint", tag)
	}
	return ev, dec.Err()
}

// SaveChangelog writes a length-prefixed changelog.
func SaveChangelog(enc *checkpoint.Encoder, c Changelog) {
	enc.Uvarint(uint64(len(c)))
	for _, ev := range c {
		SaveEvent(enc, ev)
	}
}

// LoadChangelog reads a changelog written by SaveChangelog.
func LoadChangelog(dec *checkpoint.Decoder) (Changelog, error) {
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	var out Changelog
	if n > 0 {
		out = make(Changelog, 0, checkpoint.CapHint(n))
	}
	for i := uint64(0); i < n; i++ {
		ev, err := LoadEvent(dec)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// SaveState writes the relation's bag contents in iteration order. Entries
// whose multiplicity dropped to zero are omitted: re-inserting a row after it
// left the bag places it at the back of the iteration order either way, so
// the restored relation iterates identically to the live one.
func (r *Relation) SaveState(enc *checkpoint.Encoder) {
	enc.Section("tvr.Relation")
	live := 0
	for _, k := range r.order {
		if r.entries[k].count > 0 {
			live++
		}
	}
	enc.Uvarint(uint64(live))
	for _, k := range r.order {
		e := r.entries[k]
		if e.count == 0 {
			continue
		}
		enc.Row(e.row)
		enc.Uvarint(uint64(e.count))
	}
}

// LoadState rebuilds the relation from a SaveState stream. The receiver must
// be empty.
func (r *Relation) LoadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("tvr.Relation"); err != nil {
		return err
	}
	n := dec.Uvarint()
	for i := uint64(0); i < n; i++ {
		row := dec.Row()
		count := int(dec.Uvarint())
		if err := dec.Err(); err != nil {
			return err
		}
		if row == nil || count <= 0 {
			return fmt.Errorf("tvr: corrupt relation entry in checkpoint")
		}
		k := row.Key()
		r.entries[k] = &entry{row: row, count: count}
		r.order = append(r.order, k)
		r.size += count
	}
	return dec.Err()
}

// SaveState writes the renderer's per-group version counters, sorted by
// group key for deterministic bytes (the map tracks no insertion order, and
// lookup order does not affect behavior).
func (sr *StreamRenderer) SaveState(enc *checkpoint.Encoder) {
	enc.Section("tvr.StreamRenderer")
	keys := make([]string, 0, len(sr.vers))
	for k := range sr.vers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.Int(*sr.vers[k])
	}
}

// LoadState rebuilds the version counters from a SaveState stream.
func (sr *StreamRenderer) LoadState(dec *checkpoint.Decoder) error {
	if err := dec.Expect("tvr.StreamRenderer"); err != nil {
		return err
	}
	n := dec.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := dec.String()
		v := dec.Int()
		sr.vers[k] = &v
	}
	return dec.Err()
}

// SortedKeys returns the keys of a string-keyed map in sorted order — the
// deterministic-serialization helper shared by operators whose map-backed
// state tracks no insertion order.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
