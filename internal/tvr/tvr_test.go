package tvr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func row(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

func TestRelationBagSemantics(t *testing.T) {
	r := NewRelation()
	r.Insert(row(1))
	r.Insert(row(1))
	r.Insert(row(2))
	if r.Len() != 3 || r.Distinct() != 2 {
		t.Fatalf("Len=%d Distinct=%d", r.Len(), r.Distinct())
	}
	if r.Count(row(1)) != 2 {
		t.Fatalf("Count(1)=%d", r.Count(row(1)))
	}
	if err := r.Delete(row(1)); err != nil {
		t.Fatal(err)
	}
	if r.Count(row(1)) != 1 || r.Len() != 2 {
		t.Fatal("delete did not decrement")
	}
	if err := r.Delete(row(3)); err == nil {
		t.Fatal("deleting absent row should error")
	}
	if err := r.Delete(row(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(row(1)); err == nil {
		t.Fatal("underflow should error")
	}
}

func TestRelationOrderDeterministic(t *testing.T) {
	r := NewRelation()
	r.Insert(row(3))
	r.Insert(row(1))
	r.Insert(row(2))
	rows := r.Rows()
	want := []int64{3, 1, 2}
	for i, w := range want {
		if rows[i][0].Int() != w {
			t.Fatalf("order %v, want %v", rows, want)
		}
	}
	// Deleting and re-inserting moves to the back.
	if err := r.Delete(row(3)); err != nil {
		t.Fatal(err)
	}
	r.Insert(row(3))
	rows = r.Rows()
	want = []int64{1, 2, 3}
	for i, w := range want {
		if rows[i][0].Int() != w {
			t.Fatalf("order after reinsert %v, want %v", rows, want)
		}
	}
}

func TestRelationRowsSortedBy(t *testing.T) {
	r := NewRelation()
	r.Insert(types.Row{types.NewInt(2), types.NewString("b")})
	r.Insert(types.Row{types.NewInt(1), types.NewString("z")})
	r.Insert(types.Row{types.NewInt(1), types.NewString("a")})
	r.Insert(types.Row{types.Null(), types.NewString("n")})
	rows := r.RowsSortedBy(0, 1)
	got := make([]string, len(rows))
	for i, rr := range rows {
		got[i] = rr[1].Str()
	}
	want := "n,a,z,b"
	if strings.Join(got, ",") != want {
		t.Fatalf("sorted = %v, want %s", got, want)
	}
}

func TestRelationEqualCloneDiff(t *testing.T) {
	a := NewRelation()
	a.Insert(row(1))
	a.Insert(row(1))
	a.Insert(row(2))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Insert(row(3))
	if a.Equal(b) {
		t.Fatal("should differ after insert")
	}
	diff := a.Diff(b, types.ClockTime(9, 0))
	// Applying the diff to a copy of a should yield b.
	c := a.Clone()
	for _, e := range diff {
		if err := c.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Equal(b) {
		t.Fatalf("diff-apply mismatch: %v vs %v", c, b)
	}
	// Diff in the other direction too (deletions).
	diff2 := b.Diff(a, 0)
	d := b.Clone()
	for _, e := range diff2 {
		if err := d.Apply(e); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Equal(a) {
		t.Fatal("reverse diff mismatch")
	}
}

func TestChangelogValidate(t *testing.T) {
	good := Changelog{
		WatermarkEvent(types.ClockTime(8, 7), types.ClockTime(8, 5)),
		InsertEvent(types.ClockTime(8, 8), row(1)),
		WatermarkEvent(types.ClockTime(8, 14), types.ClockTime(8, 8)),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	badP := Changelog{
		InsertEvent(types.ClockTime(8, 8), row(1)),
		InsertEvent(types.ClockTime(8, 7), row(2)),
	}
	if err := badP.Validate(); err == nil {
		t.Fatal("ptime regression not detected")
	}
	badW := Changelog{
		WatermarkEvent(types.ClockTime(8, 7), types.ClockTime(8, 5)),
		WatermarkEvent(types.ClockTime(8, 8), types.ClockTime(8, 4)),
	}
	if err := badW.Validate(); err == nil {
		t.Fatal("watermark regression not detected")
	}
}

func TestSnapshotAtAndWatermarkAt(t *testing.T) {
	c := Changelog{
		InsertEvent(types.ClockTime(8, 8), row(1)),
		WatermarkEvent(types.ClockTime(8, 10), types.ClockTime(8, 5)),
		InsertEvent(types.ClockTime(8, 12), row(2)),
		DeleteEvent(types.ClockTime(8, 13), row(1)),
	}
	at := func(h, m int) *Relation {
		t.Helper()
		rel, err := c.SnapshotAt(types.ClockTime(h, m))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	if got := at(8, 7).Len(); got != 0 {
		t.Fatalf("at 8:07 len=%d", got)
	}
	if got := at(8, 8).Len(); got != 1 {
		t.Fatalf("at 8:08 len=%d", got)
	}
	if got := at(8, 12).Len(); got != 2 {
		t.Fatalf("at 8:12 len=%d", got)
	}
	final := at(8, 30)
	if final.Len() != 1 || final.Count(row(2)) != 1 {
		t.Fatalf("final = %v", final)
	}
	if wm := c.WatermarkAt(types.ClockTime(8, 9)); wm != types.MinTime {
		t.Fatalf("wm at 8:09 = %v", wm)
	}
	if wm := c.WatermarkAt(types.ClockTime(8, 30)); wm != types.ClockTime(8, 5) {
		t.Fatalf("wm final = %v", wm)
	}
	if c.DataCount() != 3 {
		t.Fatalf("DataCount = %d", c.DataCount())
	}
}

func TestRenderStreamVersions(t *testing.T) {
	// Two windows (key column 0); window 10 gets three changes, window 20 one.
	c := Changelog{
		InsertEvent(types.ClockTime(8, 8), row(10, 2)),
		InsertEvent(types.ClockTime(8, 12), row(20, 3)),
		DeleteEvent(types.ClockTime(8, 13), row(10, 2)),
		InsertEvent(types.ClockTime(8, 13), row(10, 4)),
	}
	rows := RenderStream(c, []int{0})
	if len(rows) != 4 {
		t.Fatalf("len=%d", len(rows))
	}
	wantVers := []int{0, 0, 1, 2}
	wantUndo := []bool{false, false, true, false}
	for i := range rows {
		if rows[i].Ver != wantVers[i] || rows[i].Undo != wantUndo[i] {
			t.Errorf("row %d = %+v, want ver=%d undo=%v", i, rows[i], wantVers[i], wantUndo[i])
		}
	}
	// Round trip back to a changelog.
	back := ReplayStream(rows)
	if len(back) != len(c) {
		t.Fatalf("replay len=%d", len(back))
	}
	for i := range back {
		if back[i].Kind != c[i].Kind || !back[i].Row.Equal(c[i].Row) || back[i].Ptime != c[i].Ptime {
			t.Errorf("replay[%d] = %v, want %v", i, back[i], c[i])
		}
	}
}

func TestUpsertEncodingCollapsesUpdates(t *testing.T) {
	// Key = column 0. An update is DELETE+INSERT in the retraction stream.
	c := Changelog{
		InsertEvent(1, row(1, 100)),
		InsertEvent(2, row(2, 200)),
		DeleteEvent(3, row(1, 100)),
		InsertEvent(3, row(1, 150)),
		DeleteEvent(4, row(2, 200)),
	}
	ups, err := ToUpsert(c, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// 5 retraction messages -> 4 upsert messages (update collapsed).
	if len(ups) != 4 {
		t.Fatalf("upsert len=%d, want 4: %v", len(ups), ups)
	}
	back, err := FromUpsert(ups, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Same final snapshot.
	a, err := c.SnapshotAt(types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.SnapshotAt(types.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("round trip snapshot mismatch: %v vs %v", a, b)
	}
}

func TestUpsertEncodingErrors(t *testing.T) {
	if _, err := ToUpsert(Changelog{DeleteEvent(1, row(1, 1))}, []int{0}); err == nil {
		t.Error("delete of absent key should error")
	}
	dup := Changelog{InsertEvent(1, row(1, 1)), InsertEvent(2, row(1, 2))}
	if _, err := ToUpsert(dup, []int{0}); err == nil {
		t.Error("duplicate live key should error")
	}
	if _, err := FromUpsert([]UpsertEvent{{Kind: UpsertDelete, Row: row(9)}}, []int{0}); err == nil {
		t.Error("upsert replay of absent delete should error")
	}
}

// Property: for any random sequence of inserts/deletes over a small key
// space, the upsert round-trip preserves the snapshot at every ptime.
func TestQuickUpsertRoundTripSnapshots(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		live := map[int64]int64{} // key -> value
		var c Changelog
		p := types.Time(0)
		for i := 0; i < 60; i++ {
			p += types.Time(rng.Intn(3))
			k := int64(rng.Intn(5))
			if v, ok := live[k]; ok && rng.Intn(2) == 0 {
				c = append(c, DeleteEvent(p, row(k, v)))
				delete(live, k)
			} else if !ok {
				v := int64(rng.Intn(100))
				c = append(c, InsertEvent(p, row(k, v)))
				live[k] = v
			}
		}
		ups, err := ToUpsert(c, []int{0})
		if err != nil {
			return false
		}
		back, err := FromUpsert(ups, []int{0})
		if err != nil {
			return false
		}
		if len(ups) > len(c) {
			return false // upsert must never be larger
		}
		for _, at := range []types.Time{0, 10, 20, 40, types.MaxTime} {
			a, err1 := c.SnapshotAt(at)
			b, err2 := back.SnapshotAt(at)
			if err1 != nil || err2 != nil || !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventStrings(t *testing.T) {
	e := InsertEvent(types.ClockTime(8, 8), row(1))
	if got := e.String(); got != "8:08 INSERT (1)" {
		t.Errorf("insert String = %q", got)
	}
	w := WatermarkEvent(types.ClockTime(8, 7), types.ClockTime(8, 5))
	if got := w.String(); got != "8:07 WM -> 8:05" {
		t.Errorf("wm String = %q", got)
	}
	if HeartbeatEvent(0).String() != "0:00 HB" {
		t.Errorf("hb String = %q", HeartbeatEvent(0).String())
	}
	if Insert.String() != "INSERT" || Delete.String() != "DELETE" {
		t.Error("kind strings")
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(s, "| a   | bb |") || !strings.Contains(s, "| 333 | 4  |") {
		t.Errorf("FormatTable output:\n%s", s)
	}
	sch := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt64})
	out := FormatRelationTable(sch, []types.Row{row(7)})
	if !strings.Contains(out, "| 7 |") {
		t.Errorf("FormatRelationTable:\n%s", out)
	}
	srows := []StreamRow{{Row: row(7), Undo: true, Ptime: types.ClockTime(8, 8), Ver: 1}}
	out = FormatStreamTable(sch, srows)
	if !strings.Contains(out, "undo") || !strings.Contains(out, "8:08") {
		t.Errorf("FormatStreamTable:\n%s", out)
	}
}
