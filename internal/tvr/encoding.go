package tvr

import (
	"fmt"

	"repro/internal/types"
)

// This file implements the two changelog encodings discussed in Appendix
// B.2.3 of the paper: retraction streams (every change as INSERT/DELETE,
// fully general) and upsert streams (UPSERT/DELETE with respect to a unique
// key, which encodes an UPDATE as a single message and is therefore more
// compact for keyed relations).

// UpsertKind discriminates upsert-stream messages.
type UpsertKind uint8

const (
	// Upsert replaces (or inserts) the row for its key.
	Upsert UpsertKind = iota
	// UpsertDelete removes the row for its key.
	UpsertDelete
)

// UpsertEvent is one message of an upsert stream.
type UpsertEvent struct {
	Ptime types.Time
	Kind  UpsertKind
	Row   types.Row // full row for Upsert; key columns suffice for Delete but we carry the full row
}

// ToUpsert re-encodes a retraction changelog as an upsert stream with respect
// to the unique key at keyIdxs. A DELETE immediately followed by an INSERT
// with the same key at the same processing time — the retraction encoding of
// an UPDATE — collapses into one Upsert message, which is exactly the saving
// the paper attributes to upsert streams (collapsing across distinct ptimes
// would change intermediate snapshots, so it is not done). It is an error for
// the changelog to contain two live rows with the same key.
func ToUpsert(c Changelog, keyIdxs []int) ([]UpsertEvent, error) {
	live := make(map[string]types.Row)
	var out []UpsertEvent
	var pendingDel *UpsertEvent // held back to see if an insert replaces it
	flush := func() {
		if pendingDel != nil {
			out = append(out, *pendingDel)
			pendingDel = nil
		}
	}
	for _, e := range c {
		if !e.IsData() {
			continue
		}
		k := e.Row.KeyOf(keyIdxs)
		switch e.Kind {
		case Delete:
			flush()
			old, ok := live[k]
			if !ok {
				return nil, fmt.Errorf("tvr: upsert encoding: delete of absent key %v", e.Row)
			}
			if !old.Equal(e.Row) {
				return nil, fmt.Errorf("tvr: upsert encoding: delete row %v does not match live row %v", e.Row, old)
			}
			delete(live, k)
			pendingDel = &UpsertEvent{Ptime: e.Ptime, Kind: UpsertDelete, Row: e.Row}
		case Insert:
			if _, ok := live[k]; ok {
				return nil, fmt.Errorf("tvr: upsert encoding requires unique key; duplicate key for %v", e.Row)
			}
			if pendingDel != nil {
				if pendingDel.Ptime == e.Ptime && pendingDel.Row.KeyOf(keyIdxs) == k {
					// Same-ptime DELETE+INSERT on one key is an
					// UPDATE: collapse to a single UPSERT.
					pendingDel = nil
				} else {
					flush()
				}
			}
			live[k] = e.Row
			out = append(out, UpsertEvent{Ptime: e.Ptime, Kind: Upsert, Row: e.Row})
		}
	}
	flush()
	return out, nil
}

// FromUpsert expands an upsert stream back into a retraction changelog.
// Together with ToUpsert it witnesses that the two encodings describe the
// same TVR (they produce equal snapshots at every ptime).
func FromUpsert(events []UpsertEvent, keyIdxs []int) (Changelog, error) {
	live := make(map[string]types.Row)
	var out Changelog
	for _, e := range events {
		k := e.Row.KeyOf(keyIdxs)
		switch e.Kind {
		case Upsert:
			if old, ok := live[k]; ok {
				out = append(out, DeleteEvent(e.Ptime, old))
			}
			live[k] = e.Row
			out = append(out, InsertEvent(e.Ptime, e.Row))
		case UpsertDelete:
			old, ok := live[k]
			if !ok {
				return nil, fmt.Errorf("tvr: upsert replay: delete of absent key %v", e.Row)
			}
			delete(live, k)
			out = append(out, DeleteEvent(e.Ptime, old))
		}
	}
	return out, nil
}
