package tvr

import (
	"fmt"
	"sort"

	"repro/internal/types"
)

// Relation is an instantaneous relation: a bag (multiset) of rows, the value
// a TVR takes at a single point in time. Iteration order is deterministic:
// distinct rows enumerate in the order they first (re)entered the bag.
type Relation struct {
	entries map[string]*entry
	order   []string // keys in first-insertion order
	size    int      // total multiplicity
	scratch []byte   // reusable key-encoding buffer for the non-keyed paths
}

type entry struct {
	row   types.Row
	count int
}

// NewRelation returns an empty relation.
func NewRelation() *Relation {
	return &Relation{entries: make(map[string]*entry)}
}

// Insert adds one copy of row to the bag. The row's key is encoded into the
// relation's scratch buffer; the key string is only materialized when the row
// enters the bag for the first time (map lookups through string(scratch) are
// allocation-free).
func (r *Relation) Insert(row types.Row) {
	r.scratch = row.AppendKey(r.scratch[:0])
	if e, ok := r.entries[string(r.scratch)]; ok {
		if e.count == 0 {
			// Materialize the key only on the cold re-entry branch.
			r.bump(e, string(r.scratch))
		} else {
			e.count++
			r.size++
		}
		return
	}
	r.insertNew(row, string(r.scratch))
}

// InsertKeyed is Insert with the row's serialized key precomputed by the
// caller (k must equal row.Key()); the parallel executor hashes rows in
// worker goroutines and reuses the serialization here.
func (r *Relation) InsertKeyed(row types.Row, k string) {
	if e, ok := r.entries[k]; ok {
		r.bump(e, k)
		return
	}
	r.insertNew(row, k)
}

func (r *Relation) insertNew(row types.Row, k string) {
	e := &entry{row: row.Clone(), count: 1}
	r.entries[k] = e
	r.order = append(r.order, k)
	r.size++
}

func (r *Relation) insertOwned(row types.Row, k string) {
	e := &entry{row: row, count: 1}
	r.entries[k] = e
	r.order = append(r.order, k)
	r.size++
}

func (r *Relation) bump(e *entry, k string) {
	if e.count == 0 {
		// Re-entering the bag: move to the back of the iteration order.
		r.removeFromOrder(k)
		r.order = append(r.order, k)
	}
	e.count++
	r.size++
}

// Delete removes one copy of row from the bag. Deleting a row that is not
// present is an error: it means an upstream operator emitted an unmatched
// retraction, which would silently corrupt downstream state.
func (r *Relation) Delete(row types.Row) error {
	r.scratch = row.AppendKey(r.scratch[:0])
	e, ok := r.entries[string(r.scratch)]
	if !ok || e.count == 0 {
		return fmt.Errorf("tvr: retraction of absent row %s", row)
	}
	e.count--
	r.size--
	return nil
}

// DeleteKeyed is Delete with the row's serialized key precomputed (k must
// equal row.Key()).
func (r *Relation) DeleteKeyed(row types.Row, k string) error {
	e, ok := r.entries[k]
	if !ok || e.count == 0 {
		return fmt.Errorf("tvr: retraction of absent row %s", row)
	}
	e.count--
	r.size--
	return nil
}

// Apply folds a data event into the bag.
func (r *Relation) Apply(e Event) error {
	switch e.Kind {
	case Insert:
		r.Insert(e.Row)
		return nil
	case Delete:
		return r.Delete(e.Row)
	default:
		return nil
	}
}

// ApplyOwned is Apply for callers that guarantee e.Row is immutable and may
// be retained (e.g. a sink that also appends the event to a changelog). It
// skips the defensive copy a first-time insert would otherwise make.
func (r *Relation) ApplyOwned(e Event) error {
	switch e.Kind {
	case Insert:
		r.scratch = e.Row.AppendKey(r.scratch[:0])
		if en, ok := r.entries[string(r.scratch)]; ok {
			if en.count == 0 {
				// Materialize the key only on the cold re-entry branch.
				r.bump(en, string(r.scratch))
			} else {
				en.count++
				r.size++
			}
			return nil
		}
		r.insertOwned(e.Row, string(r.scratch))
		return nil
	case Delete:
		return r.Delete(e.Row)
	default:
		return nil
	}
}

// ApplyKeyedOwned is ApplyKeyed for callers that guarantee e.Row is
// immutable and may be retained (see ApplyOwned).
func (r *Relation) ApplyKeyedOwned(e Event, k string) error {
	switch e.Kind {
	case Insert:
		if en, ok := r.entries[k]; ok {
			r.bump(en, k)
			return nil
		}
		r.insertOwned(e.Row, k)
		return nil
	case Delete:
		return r.DeleteKeyed(e.Row, k)
	default:
		return nil
	}
}

// ApplyKeyed folds a data event into the bag using a precomputed row key
// (k must equal e.Row.Key()).
func (r *Relation) ApplyKeyed(e Event, k string) error {
	switch e.Kind {
	case Insert:
		r.InsertKeyed(e.Row, k)
		return nil
	case Delete:
		return r.DeleteKeyed(e.Row, k)
	default:
		return nil
	}
}

func (r *Relation) removeFromOrder(k string) {
	for i, ok := range r.order {
		if ok == k {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// Count returns the multiplicity of row in the bag.
func (r *Relation) Count(row types.Row) int {
	if e, ok := r.entries[row.Key()]; ok {
		return e.count
	}
	return 0
}

// Len returns the total number of rows (counting multiplicity).
func (r *Relation) Len() int { return r.size }

// Distinct returns the number of distinct rows present.
func (r *Relation) Distinct() int {
	n := 0
	for _, e := range r.entries {
		if e.count > 0 {
			n++
		}
	}
	return n
}

// Rows returns every row (expanded by multiplicity) in deterministic
// first-insertion order.
func (r *Relation) Rows() []types.Row {
	out := make([]types.Row, 0, r.size)
	for _, k := range r.order {
		e := r.entries[k]
		for i := 0; i < e.count; i++ {
			out = append(out, e.row)
		}
	}
	return out
}

// RowsSortedBy returns the rows sorted by the given column indexes
// (ascending, NULLs first), used for rendering ordered table snapshots.
func (r *Relation) RowsSortedBy(cols ...int) []types.Row {
	rows := r.Rows()
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			a, b := rows[i][c], rows[j][c]
			if a.IsNull() || b.IsNull() {
				if a.IsNull() && !b.IsNull() {
					return true
				}
				if !a.IsNull() {
					return false
				}
				continue
			}
			cmp, err := a.Compare(b)
			if err != nil || cmp == 0 {
				continue
			}
			return cmp < 0
		}
		return false
	})
	return rows
}

// Equal reports whether two relations contain exactly the same bag of rows.
func (r *Relation) Equal(o *Relation) bool {
	if r.size != o.size {
		return false
	}
	for k, e := range r.entries {
		oe, ok := o.entries[k]
		oc := 0
		if ok {
			oc = oe.count
		}
		if e.count != oc {
			return false
		}
	}
	for k, oe := range o.entries {
		if oe.count > 0 {
			if e, ok := r.entries[k]; !ok || e.count == 0 {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation()
	for _, k := range r.order {
		e := r.entries[k]
		out.entries[k] = &entry{row: e.row.Clone(), count: e.count}
		out.order = append(out.order, k)
		out.size += e.count
	}
	return out
}

// Diff returns the changelog (at ptime p) that transforms r into o:
// deletions for rows over-represented in r, insertions for rows
// over-represented in o. It is the primitive behind EMIT AFTER DELAY's
// coalesced materialization.
func (r *Relation) Diff(o *Relation, p types.Time) Changelog {
	var out Changelog
	// Deletions first so downstream bags never over-count.
	for _, k := range r.order {
		e := r.entries[k]
		oc := 0
		if oe, ok := o.entries[k]; ok {
			oc = oe.count
		}
		for i := oc; i < e.count; i++ {
			out = append(out, DeleteEvent(p, e.row))
		}
	}
	for _, k := range o.order {
		oe := o.entries[k]
		rc := 0
		if re, ok := r.entries[k]; ok {
			rc = re.count
		}
		for i := rc; i < oe.count; i++ {
			out = append(out, InsertEvent(p, oe.row))
		}
	}
	return out
}

// String renders the bag's contents for debugging.
func (r *Relation) String() string {
	s := "{"
	for i, row := range r.Rows() {
		if i > 0 {
			s += ", "
		}
		s += row.String()
	}
	return s + "}"
}
