package tvr

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// StreamRow is one row of the stream rendering of a TVR (Extension 4): the
// underlying relation row plus the changelog metadata columns the paper's
// EMIT STREAM examples show.
type StreamRow struct {
	// Row is the relation row affected.
	Row types.Row
	// Undo is true when the row is a retraction of a previous row.
	Undo bool
	// Ptime is the processing-time offset of the change in the changelog.
	Ptime types.Time
	// Ver is a sequence number versioning this row with respect to other
	// rows of the same event-time grouping.
	Ver int
}

// String renders the stream row as "(cols...) undo=? ptime=.. ver=..".
func (s StreamRow) String() string {
	undo := ""
	if s.Undo {
		undo = " undo"
	}
	return fmt.Sprintf("%s%s ptime=%s ver=%d", s.Row, undo, s.Ptime, s.Ver)
}

// RenderStream converts a changelog into its stream rendering, assigning each
// change a version number relative to other changes of the same group. The
// group of a row is identified by the values at keyIdxs (in the paper's
// examples, the window columns wstart/wend); if keyIdxs is empty every row
// belongs to one global group and versions are assigned per identical row
// content instead, which matches "changes to the same event time grouping"
// degenerating to the whole relation.
func RenderStream(c Changelog, keyIdxs []int) []StreamRow {
	return NewStreamRenderer(keyIdxs).Append(c)
}

// StreamRenderer is the incremental form of RenderStream: it keeps the
// per-group version counters across calls, so a changelog rendered in any
// number of Append batches yields exactly the rows a single RenderStream
// over the concatenated log would. Standing queries use it to decorate
// output deltas as they materialize.
type StreamRenderer struct {
	keyIdxs []int
	// vers holds pointer-valued counters so the steady-state path — encode
	// the group key into the scratch buffer, look up, bump through the
	// pointer — never materializes a key string (map assignment with a
	// string(bytes) key would allocate; lookups do not).
	vers    map[string]*int
	scratch []byte // reusable group-key encoding buffer
	// Run cache: consecutive changes to the same group (an aggregate's
	// retract/emit pair is the common case) skip the map probe.
	prevKey []byte
	prevVer *int
}

// NewStreamRenderer creates a renderer grouping version numbers by the
// columns at keyIdxs (empty means one global group).
func NewStreamRenderer(keyIdxs []int) *StreamRenderer {
	return &StreamRenderer{keyIdxs: keyIdxs, vers: make(map[string]*int)}
}

// Append renders the next slice of the changelog, continuing the version
// numbering from previous calls.
func (r *StreamRenderer) Append(c Changelog) []StreamRow {
	nData := 0
	for i := range c {
		if c[i].IsData() {
			nData++
		}
	}
	if nData == 0 {
		return nil
	}
	out := make([]StreamRow, 0, nData)
	for _, e := range c {
		if !e.IsData() {
			continue
		}
		r.scratch = r.scratch[:0]
		if len(r.keyIdxs) > 0 {
			r.scratch = e.Row.AppendKeyOf(r.scratch, r.keyIdxs)
		}
		ver := r.prevVer
		if ver == nil || !bytes.Equal(r.scratch, r.prevKey) {
			v, ok := r.vers[string(r.scratch)] // allocation-free lookup
			if !ok {
				v = new(int)
				r.vers[string(r.scratch)] = v
			}
			ver = v
			r.prevKey = append(r.prevKey[:0], r.scratch...)
			r.prevVer = ver
		}
		out = append(out, StreamRow{
			Row:   e.Row,
			Undo:  e.Kind == Delete,
			Ptime: e.Ptime,
			Ver:   *ver,
		})
		*ver++
	}
	return out
}

// ReplayStream converts a stream rendering back into the underlying
// changelog, demonstrating the declarative stream->table conversion the
// paper highlights (Section 3.3.1: no special operators needed).
func ReplayStream(rows []StreamRow) Changelog {
	out := make(Changelog, 0, len(rows))
	for _, s := range rows {
		if s.Undo {
			out = append(out, DeleteEvent(s.Ptime, s.Row))
		} else {
			out = append(out, InsertEvent(s.Ptime, s.Row))
		}
	}
	return out
}

// FormatStreamTable renders stream rows as the paper's EMIT STREAM listings
// do: the relation columns followed by undo, ptime, and ver.
func FormatStreamTable(schema *types.Schema, rows []StreamRow) string {
	headers := append(append([]string{}, schema.Names()...), "undo", "ptime", "ver")
	var cells [][]string
	for _, s := range rows {
		row := make([]string, 0, len(headers))
		for _, v := range s.Row {
			row = append(row, v.String())
		}
		undo := ""
		if s.Undo {
			undo = "undo"
		}
		row = append(row, undo, s.Ptime.String(), strconv.Itoa(s.Ver))
		cells = append(cells, row)
	}
	return FormatTable(headers, cells)
}

// FormatRelationTable renders plain relation rows as a bordered text table in
// the style of the paper's listings.
func FormatRelationTable(schema *types.Schema, rows []types.Row) string {
	var cells [][]string
	for _, r := range rows {
		row := make([]string, 0, len(r))
		for _, v := range r {
			row = append(row, v.String())
		}
		cells = append(cells, row)
	}
	return FormatTable(schema.Names(), cells)
}

// FormatTable renders a simple bordered text table with one header row.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, w := range widths {
		total += w + 3
	}
	border := strings.Repeat("-", total)
	var sb strings.Builder
	sb.Grow((len(rows) + 4) * (total + 1))
	writeRow := func(cells []string) {
		sb.WriteByte('|')
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			sb.WriteByte(' ')
			sb.WriteString(c)
			for p := len(c); p < w; p++ {
				sb.WriteByte(' ')
			}
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(border)
	sb.WriteByte('\n')
	writeRow(headers)
	sb.WriteString(border)
	sb.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	sb.WriteString(border)
	sb.WriteByte('\n')
	return sb.String()
}
