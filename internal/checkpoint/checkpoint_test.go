package checkpoint

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

// TestRoundTrip encodes one of every primitive and reads it back.
func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Section("header")
	enc.Uvarint(0)
	enc.Uvarint(1 << 60)
	enc.Varint(-1 << 55)
	enc.Int(42)
	enc.Bool(true)
	enc.Bool(false)
	enc.String("")
	enc.String("hello, checkpoint")
	enc.Time(types.MinTime)
	enc.Time(types.MaxTime)
	enc.Duration(10 * types.Minute)
	enc.Section("values")
	vals := []types.Value{
		types.Null(),
		types.NewBool(true),
		types.NewInt(-7),
		types.NewFloat(math.Pi),
		types.NewFloat(math.Inf(-1)),
		types.NewString("päper"),
		types.NewTimestamp(types.ClockTime(8, 7)),
		types.NewInterval(types.Second),
	}
	for _, v := range vals {
		enc.Value(v)
	}
	enc.Row(nil)
	enc.Row(types.Row{})
	enc.Row(types.Row{types.NewInt(1), types.Null(), types.NewString("x")})
	if err := enc.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}

	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := dec.Expect("header"); err != nil {
		t.Fatal(err)
	}
	if got := dec.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := dec.Uvarint(); got != 1<<60 {
		t.Errorf("uvarint = %d", got)
	}
	if got := dec.Varint(); got != -1<<55 {
		t.Errorf("varint = %d", got)
	}
	if got := dec.Int(); got != 42 {
		t.Errorf("int = %d", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Errorf("bools corrupted")
	}
	if got := dec.String(); got != "" {
		t.Errorf("empty string = %q", got)
	}
	if got := dec.String(); got != "hello, checkpoint" {
		t.Errorf("string = %q", got)
	}
	if got := dec.Time(); got != types.MinTime {
		t.Errorf("MinTime = %v", got)
	}
	if got := dec.Time(); got != types.MaxTime {
		t.Errorf("MaxTime = %v", got)
	}
	if got := dec.Duration(); got != 10*types.Minute {
		t.Errorf("duration = %v", got)
	}
	if err := dec.Expect("values"); err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		got := dec.Value()
		if !got.Equal(want) || got.Kind() != want.Kind() {
			t.Errorf("value %d = %v (%s), want %v (%s)", i, got, got.Kind(), want, want.Kind())
		}
	}
	if row := dec.Row(); row != nil {
		t.Errorf("nil row decoded as %v", row)
	}
	if row := dec.Row(); row == nil || len(row) != 0 {
		t.Errorf("empty row decoded as %v", row)
	}
	row := dec.Row()
	want := types.Row{types.NewInt(1), types.Null(), types.NewString("x")}
	if !row.Equal(want) {
		t.Errorf("row = %v, want %v", row, want)
	}
	if err := dec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSectionMismatch: a drifted reader fails loudly at the section seam.
func TestSectionMismatch(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.Section("agg-state")
	enc.Int(3)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Expect("join-state"); err == nil {
		t.Fatal("section mismatch not detected")
	}
}

// TestCorruptionDetected: flipping any payload byte fails the CRC check.
func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.String("state bytes that matter")
	enc.Int(12345)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupt := append([]byte{}, data...)
	corrupt[len(magic)+3] ^= 0x40
	dec, err := NewDecoder(bytes.NewReader(corrupt))
	if err != nil {
		// Corruption in the length prefix may already fail the open/read.
		return
	}
	_ = dec.String()
	dec.Int()
	if dec.Close() == nil {
		t.Fatal("corruption not detected by crc trailer")
	}
}

// TestTruncationDetected: a stream cut short fails rather than zero-filling.
func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.String("0123456789")
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-6]
	dec, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_ = dec.String()
	if dec.Close() == nil {
		t.Fatal("truncation not detected")
	}
}

// TestVersionMismatch: a future-format stream is refused at open.
func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(FormatVersion + 1)
	if _, err := NewDecoder(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future format version accepted")
	}
}

// TestBadMagic: arbitrary files are refused.
func TestBadMagic(t *testing.T) {
	if _, err := NewDecoder(bytes.NewReader([]byte("NOTACKPTFILE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestWriteFileAtomic: the on-disk swap leaves either the old or the new
// complete checkpoint, and ReadFile verifies the trailer.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.ckpt")
	size, err := WriteFileAtomic(path, func(e *Encoder) error {
		e.Section("v1")
		e.Int(1)
		return e.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("size = %d", size)
	}
	// Overwrite with new content; a failed write must not clobber it.
	if _, err := WriteFileAtomic(path, func(e *Encoder) error {
		e.Section("v2")
		e.Int(2)
		return e.Err()
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := ReadFile(path, func(d *Decoder) error {
		if err := d.Expect("v2"); err != nil {
			return err
		}
		got = d.Int()
		return d.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("read back %d, want 2", got)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
}
