package checkpoint

// Fault-injection tests for the atomic checkpoint swap: whatever fails —
// ENOSPC mid-write, a failed fsync, a failed rename — the previous durable
// checkpoint must survive byte-identical and no temp-file litter may
// accumulate (a crashed rename leaves at most one temp, which the startup
// sweep removes; a FAILED write must clean up after itself).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// writeGood writes a valid checkpoint with a recognizable payload.
func writeGood(t *testing.T, fsys vfs.FS, path, payload string) {
	t.Helper()
	if _, err := WriteFileAtomicFS(fsys, path, func(enc *Encoder) error {
		enc.String(payload)
		return enc.Err()
	}); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
}

// readPayload reads the checkpoint back, verifying the trailer.
func readPayload(t *testing.T, fsys vfs.FS, path string) string {
	t.Helper()
	var got string
	if err := ReadFileFS(fsys, path, func(dec *Decoder) error {
		got = dec.String()
		return dec.Err()
	}); err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	return got
}

// tempLitter returns the names of leftover temp files next to path.
func tempLitter(t *testing.T, path string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	var litter []string
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			litter = append(litter, e.Name())
		}
	}
	return litter
}

// TestAtomicWriteSurvivesInjectedFailures runs the same scenario against
// every failure point in the swap: old checkpoint intact, no litter,
// recovery (a plain read) sees the pre-failure state, and a retry after
// the fault clears succeeds.
func TestAtomicWriteSurvivesInjectedFailures(t *testing.T) {
	cases := []struct {
		name  string
		fault vfs.Fault
	}{
		{"enospc-mid-write", vfs.Fault{Op: vfs.OpWrite, Path: ".tmp", Err: vfs.ErrNoSpace}},
		{"fsync-fails", vfs.Fault{Op: vfs.OpSync, Path: ".tmp"}},
		{"rename-fails", vfs.Fault{Op: vfs.OpRename}},
		{"dir-sync-fails", vfs.Fault{Op: vfs.OpSyncDir}},
		{"create-fails", vfs.Fault{Op: vfs.OpCreate, Err: vfs.ErrNoSpace}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "checkpoint.ckpt")
			ffs := vfs.NewFault(vfs.Default)
			writeGood(t, ffs, path, "old-state")

			ffs.AddFault(tc.fault)
			_, err := WriteFileAtomicFS(ffs, path, func(enc *Encoder) error {
				enc.String("new-state")
				return enc.Err()
			})
			if !errors.Is(err, vfs.ErrInjected) {
				t.Fatalf("faulted write = %v, want ErrInjected", err)
			}
			// dir-sync-fails happens AFTER the atomic rename, so the new
			// state is legitimately in place; every earlier failure must
			// leave the old checkpoint byte-for-byte intact. Either way the
			// file is a COMPLETE checkpoint — never a torn hybrid.
			want := "old-state"
			if tc.fault.Op == vfs.OpSyncDir {
				want = "new-state"
			}
			if got := readPayload(t, vfs.Default, path); got != want {
				t.Fatalf("checkpoint after failed swap = %q, want %q", got, want)
			}
			// No temp litter on any path (the deferred Remove).
			if litter := tempLitter(t, path); len(litter) != 0 {
				t.Fatalf("temp litter after failed swap: %v", litter)
			}

			ffs.ClearFaults()
			writeGood(t, ffs, path, "new-state")
			if got := readPayload(t, vfs.Default, path); got != "new-state" {
				t.Fatalf("retry after fault cleared: payload = %q", got)
			}
		})
	}
}

// TestTornCheckpointWriteNeverVisible: a torn write into the temp file must
// never surface through the checkpoint path — the swap is all-or-nothing,
// so a reader either sees the complete old state or the complete new one.
func TestTornCheckpointWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.ckpt")
	ffs := vfs.NewFault(vfs.Default)
	writeGood(t, ffs, path, "old-state")

	ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: ".tmp", Nth: 1, TornBytes: 4})
	if _, err := WriteFileAtomicFS(ffs, path, func(enc *Encoder) error {
		enc.String("new-state-much-longer-than-four-bytes")
		return enc.Err()
	}); err == nil {
		t.Fatal("torn write must fail the swap")
	}
	if got := readPayload(t, vfs.Default, path); got != "old-state" {
		t.Fatalf("reader saw torn state: %q", got)
	}
	if litter := tempLitter(t, path); len(litter) != 0 {
		t.Fatalf("temp litter after torn write: %v", litter)
	}
}
