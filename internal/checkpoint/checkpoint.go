// Package checkpoint implements the versioned, self-describing binary
// encoding that durable operator-state snapshots are written in.
//
// A checkpoint stream is
//
//	magic "TVRCKPT" | format version (uvarint) | payload ... | crc32c trailer
//
// The payload is a flat sequence of primitively encoded fields written by the
// layers above (exec operators, the tvr containers, live sessions, the engine
// catalog). Three properties make the format safe to evolve:
//
//   - Versioned: the header carries a format version; a decoder refuses
//     streams from a different version instead of misreading them.
//   - Self-describing: every value carries its kind tag, and structural
//     boundaries are marked with named sections (Section/Expect), so a
//     writer/reader mismatch fails loudly at the exact section that drifted
//     rather than silently decoding garbage.
//   - Checksummed: the whole stream is covered by a CRC-32C trailer verified
//     by Decoder.Close, so a truncated or bit-rotted checkpoint file is
//     detected before any restored state goes live.
//
// Both halves accumulate their first error and turn every subsequent call
// into a no-op, so call sites can encode a whole snapshot and check the error
// once at Close.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"

	"repro/internal/types"
	"repro/internal/vfs"
)

// magic identifies a checkpoint stream. Seven bytes so that with the version
// uvarint the common header is eight.
const magic = "TVRCKPT"

// FormatVersion is the current encoding version. Bump it on any change to
// the byte layout; a decoder only accepts its own version.
const FormatVersion = 1

// castagnoli is the CRC-32C table (the polynomial used by modern storage
// systems for end-to-end integrity checks).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// value kind tags. These deliberately do NOT reuse types.Kind numeric values:
// the wire format must stay stable even if the in-memory enum is reordered.
const (
	tagNull      byte = 'n'
	tagBool      byte = 'b'
	tagInt       byte = 'i'
	tagFloat     byte = 'f'
	tagString    byte = 's'
	tagTimestamp byte = 't'
	tagInterval  byte = 'd'
	tagSection   byte = '!' // section marker prefix
)

// Encoder writes a checkpoint stream. Create with NewEncoder, write fields,
// then Close to append the integrity trailer.
type Encoder struct {
	w   *bufio.Writer
	crc uint32
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewEncoder starts a checkpoint stream on w, writing the header.
func NewEncoder(w io.Writer) *Encoder {
	e := &Encoder{w: bufio.NewWriter(w)}
	e.raw([]byte(magic))
	e.Uvarint(FormatVersion)
	return e
}

// Err returns the first error encountered.
func (e *Encoder) Err() error { return e.err }

// Close appends the CRC trailer and flushes. The Encoder must not be used
// afterwards.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	var tr [4]byte
	binary.BigEndian.PutUint32(tr[:], e.crc)
	if _, err := e.w.Write(tr[:]); err != nil {
		e.err = err
		return err
	}
	if err := e.w.Flush(); err != nil {
		e.err = err
	}
	return e.err
}

// Bytes written so far (header included, trailer excluded) — the checkpoint
// size measure the recovery benchmark records.
func (e *Encoder) Bytes() int64 { return e.n }

func (e *Encoder) raw(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
		return
	}
	e.crc = crc32.Update(e.crc, castagnoli, p)
	e.n += int64(len(p))
}

// Uvarint writes an unsigned varint.
func (e *Encoder) Uvarint(u uint64) {
	n := binary.PutUvarint(e.buf[:], u)
	e.raw(e.buf[:n])
}

// Varint writes a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.raw(e.buf[:n])
}

// Int writes an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool writes a single boolean byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.raw([]byte{1})
	} else {
		e.raw([]byte{0})
	}
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.raw([]byte(s))
}

// Time writes a types.Time as a signed varint (MinTime/MaxTime included).
func (e *Encoder) Time(t types.Time) { e.Varint(int64(t)) }

// Duration writes a types.Duration as a signed varint.
func (e *Encoder) Duration(d types.Duration) { e.Varint(int64(d)) }

// Value writes one SQL value with its kind tag.
func (e *Encoder) Value(v types.Value) {
	switch v.Kind() {
	case types.KindNull:
		e.raw([]byte{tagNull})
	case types.KindBool:
		e.raw([]byte{tagBool})
		e.Bool(v.Bool())
	case types.KindInt64:
		e.raw([]byte{tagInt})
		e.Varint(v.Int())
	case types.KindFloat64:
		e.raw([]byte{tagFloat})
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float()))
		e.raw(b[:])
	case types.KindString:
		e.raw([]byte{tagString})
		e.String(v.Str())
	case types.KindTimestamp:
		e.raw([]byte{tagTimestamp})
		e.Varint(int64(v.Timestamp()))
	case types.KindInterval:
		e.raw([]byte{tagInterval})
		e.Varint(int64(v.Interval()))
	default:
		e.fail(fmt.Errorf("checkpoint: cannot encode value kind %s", v.Kind()))
	}
}

// Row writes a length-prefixed row. A nil row and an empty row are
// distinguished (operators use nil rows as "no output yet" markers).
func (e *Encoder) Row(r types.Row) {
	if r == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Uvarint(uint64(len(r)))
	for _, v := range r {
		e.Value(v)
	}
}

// Section writes a named structural marker. The matching Decoder.Expect
// fails loudly — naming both sections — when writer and reader disagree
// about what comes next.
func (e *Encoder) Section(name string) {
	e.raw([]byte{tagSection})
	e.String(name)
}

func (e *Encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Decoder reads a checkpoint stream written by Encoder.
type Decoder struct {
	r   *bufio.Reader
	crc uint32
	err error
}

// NewDecoder opens a checkpoint stream, verifying the header.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(d.r, head); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	d.crc = crc32.Update(d.crc, castagnoli, head)
	if string(head) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint stream)", head)
	}
	ver := d.Uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", ver, FormatVersion)
	}
	return d, nil
}

// Err returns the first decode error.
func (d *Decoder) Err() error { return d.err }

// Close reads and verifies the CRC trailer. It must be called after the last
// field: a mismatch means the stream was truncated, corrupted, or not fully
// consumed.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	want := d.crc // trailer is not part of its own coverage
	var tr [4]byte
	if _, err := io.ReadFull(d.r, tr[:]); err != nil {
		d.err = fmt.Errorf("checkpoint: reading crc trailer: %w", err)
		return d.err
	}
	if got := binary.BigEndian.Uint32(tr[:]); got != want {
		d.err = fmt.Errorf("checkpoint: crc mismatch (stream corrupted or not fully consumed)")
	}
	return d.err
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// ReadByte implements io.ByteReader over the CRC accounting.
func (d *Decoder) readByte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.fail(fmt.Errorf("checkpoint: unexpected end of stream: %w", err))
		return 0
	}
	d.crc = crc32.Update(d.crc, castagnoli, []byte{b})
	return b
}

func (d *Decoder) readFull(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.fail(fmt.Errorf("checkpoint: unexpected end of stream: %w", err))
		return
	}
	d.crc = crc32.Update(d.crc, castagnoli, p)
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b := d.readByte()
		if d.err != nil {
			return 0
		}
		if b < 0x80 {
			return x | uint64(b)<<s
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	d.fail(fmt.Errorf("checkpoint: varint overflow"))
	return 0
}

// Varint reads a signed (zigzag) varint.
func (d *Decoder) Varint() int64 {
	u := d.Uvarint()
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v
}

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads one boolean byte.
func (d *Decoder) Bool() bool {
	switch d.readByte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("checkpoint: invalid boolean byte"))
		return false
	}
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<31 {
		d.fail(fmt.Errorf("checkpoint: implausible string length %d", n))
		return ""
	}
	p := make([]byte, n)
	d.readFull(p)
	return string(p)
}

// Time reads a types.Time.
func (d *Decoder) Time() types.Time { return types.Time(d.Varint()) }

// Duration reads a types.Duration.
func (d *Decoder) Duration() types.Duration { return types.Duration(d.Varint()) }

// Value reads one tagged SQL value.
func (d *Decoder) Value() types.Value {
	switch tag := d.readByte(); tag {
	case tagNull:
		return types.Null()
	case tagBool:
		return types.NewBool(d.Bool())
	case tagInt:
		return types.NewInt(d.Varint())
	case tagFloat:
		var b [8]byte
		d.readFull(b[:])
		return types.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(b[:])))
	case tagString:
		return types.NewString(d.String())
	case tagTimestamp:
		return types.NewTimestamp(types.Time(d.Varint()))
	case tagInterval:
		return types.NewInterval(types.Duration(d.Varint()))
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("checkpoint: unknown value tag 0x%02x", tag))
		}
		return types.Null()
	}
}

// Row reads a length-prefixed row (nil-awareness mirrors Encoder.Row).
func (d *Decoder) Row() types.Row {
	if !d.Bool() {
		return nil
	}
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > 1<<20 {
		d.fail(fmt.Errorf("checkpoint: implausible row width %d", n))
		return nil
	}
	row := make(types.Row, n)
	for i := range row {
		row[i] = d.Value()
	}
	return row
}

// CapHint bounds a stream-supplied element count for use as an allocation
// hint. Restore loops append (or map-insert) one decoded element at a time,
// so a corrupt count fails at the next read or at the CRC trailer either
// way; clamping the pre-allocation keeps the failure an error instead of an
// out-of-memory abort before the trailer check runs.
func CapHint(n uint64) int {
	const max = 1 << 16
	if n > max {
		return max
	}
	return int(n)
}

// Expect consumes a section marker and verifies its name, failing with a
// got/want error on drift. This is the loud-failure seam between encoding
// layers.
func (d *Decoder) Expect(name string) error {
	if d.err != nil {
		return d.err
	}
	if b := d.readByte(); b != tagSection {
		d.fail(fmt.Errorf("checkpoint: expected section %q, found value tag 0x%02x", name, b))
		return d.err
	}
	got := d.String()
	if d.err == nil && got != name {
		d.fail(fmt.Errorf("checkpoint: section mismatch: stream has %q, reader wants %q", got, name))
	}
	return d.err
}

// WriteFileAtomic writes a checkpoint file crash-safely: the stream is
// produced into a temp file in the same directory, synced, renamed over
// path, and the parent directory is synced, so a crash at any point leaves
// either the old complete checkpoint or the new one — never a torn file.
// The directory fsync is what makes the rename itself durable: without it a
// crash shortly after return can roll the directory entry back to the old
// file (or to nothing, in a freshly created data dir), silently undoing a
// checkpoint that was already reported successful. The write callback
// receives the open Encoder; the trailer is appended after it returns.
func WriteFileAtomic(path string, write func(*Encoder) error) (int64, error) {
	return WriteFileAtomicFS(vfs.Default, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem
// (fault-injection tests; vfs.Default elsewhere). On any failure the temp
// file is removed, so an interrupted checkpoint leaves no `.tmp` litter of
// its own — only a hard crash can, and the serve startup sweep collects
// those.
func WriteFileAtomicFS(fsys vfs.FS, path string, write func(*Encoder) error) (int64, error) {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	enc := NewEncoder(tmp)
	if err := write(enc); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := enc.Close(); err != nil {
		tmp.Close()
		return 0, err
	}
	size := enc.Bytes()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return 0, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return 0, err
	}
	return size, nil
}

// ReadFile opens a checkpoint file, hands the Decoder to read, and verifies
// the trailer afterwards.
func ReadFile(path string, read func(*Decoder) error) error {
	return ReadFileFS(vfs.Default, path, read)
}

// ReadFileFS is ReadFile through an explicit filesystem.
func ReadFileFS(fsys vfs.FS, path string, read func(*Decoder) error) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec, err := NewDecoder(f)
	if err != nil {
		return err
	}
	if err := read(dec); err != nil {
		return err
	}
	return dec.Close()
}
