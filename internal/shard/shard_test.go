package shard_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard"
	"repro/internal/types"
)

// TestPerShardFIFO is the ordering contract: tasks enqueued to one shard are
// applied strictly in enqueue order, while different shards proceed
// independently.
func TestPerShardFIFO(t *testing.T) {
	p := shard.NewPool(4, 8)
	defer p.Close()
	const perShard = 200
	got := make([][]uint64, p.Shards())
	var mu sync.Mutex
	var seq uint64
	for i := 0; i < perShard; i++ {
		for sh := 0; sh < p.Shards(); sh++ {
			sh := sh
			seq++
			s := seq
			p.Enqueue(sh, s, func() {
				mu.Lock()
				got[sh] = append(got[sh], s)
				mu.Unlock()
			})
		}
	}
	p.Drain()
	mu.Lock()
	defer mu.Unlock()
	for sh, seqs := range got {
		if len(seqs) != perShard {
			t.Fatalf("shard %d applied %d tasks, want %d", sh, len(seqs), perShard)
		}
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				t.Fatalf("shard %d applied out of order: %d after %d", sh, seqs[i], seqs[i-1])
			}
		}
	}
}

// TestDrainShardBarrier: DrainShard waits for everything enqueued before the
// call, and only on that shard.
func TestDrainShardBarrier(t *testing.T) {
	p := shard.NewPool(2, 8)
	defer p.Close()
	release := make(chan struct{})
	var applied atomic.Int64
	// Shard 1 is wedged on a task that waits for release; shard 0 is free.
	p.Enqueue(1, 1, func() { <-release })
	p.Enqueue(0, 2, func() { applied.Add(1) })
	p.DrainShard(0) // must not wait on the wedged shard 1
	if n := applied.Load(); n != 1 {
		t.Fatalf("shard 0 applied %d tasks after DrainShard(0), want 1", n)
	}
	done := make(chan struct{})
	go func() {
		p.DrainShard(1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("DrainShard(1) returned while its task was still blocked")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DrainShard(1) did not return after the task unblocked")
	}
}

// TestEnqueueBackpressure: a full bounded queue blocks Enqueue until the
// worker makes space — the publisher-facing backpressure path.
func TestEnqueueBackpressure(t *testing.T) {
	p := shard.NewPool(1, 1)
	defer p.Close()
	release := make(chan struct{})
	p.Enqueue(0, 1, func() { <-release }) // worker picks this up and blocks
	// Wait for the worker to take the task so the queue slot frees.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats()[0].Depth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first task")
		}
		time.Sleep(time.Millisecond)
	}
	p.Enqueue(0, 2, func() {}) // fills the queue
	blocked := make(chan struct{})
	go func() {
		p.Enqueue(0, 3, func() {}) // must block: queue full
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Enqueue returned on a full queue")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue never unblocked after the worker drained")
	}
	p.Drain()
	st := p.Stats()[0]
	if st.Lag != 0 || st.LastSeq != 3 {
		t.Fatalf("after drain: lag=%d lastSeq=%d, want 0/3", st.Lag, st.LastSeq)
	}
}

// TestShardOfStable: placement is a pure function of the id — the
// rebalance-free property — and spreads ids across shards.
func TestShardOfStable(t *testing.T) {
	p := shard.NewPool(4, 1)
	defer p.Close()
	hit := make(map[int]bool)
	for id := 0; id < 64; id++ {
		sh := p.ShardOf(id)
		if sh < 0 || sh >= p.Shards() {
			t.Fatalf("ShardOf(%d) = %d out of range", id, sh)
		}
		if p.ShardOf(id) != sh {
			t.Fatalf("ShardOf(%d) not stable", id)
		}
		hit[sh] = true
	}
	if len(hit) < 2 {
		t.Fatalf("64 ids landed on %d shard(s); hash is degenerate", len(hit))
	}
}

// TestCloseAppliesPending: Close drains queued tasks before stopping, and is
// idempotent; a drain after Close returns immediately.
func TestCloseAppliesPending(t *testing.T) {
	p := shard.NewPool(2, 16)
	var applied atomic.Int64
	for i := 0; i < 10; i++ {
		p.Enqueue(i%2, uint64(i+1), func() { applied.Add(1) })
	}
	p.Close()
	p.Close()
	if n := applied.Load(); n != 10 {
		t.Fatalf("Close applied %d of 10 pending tasks", n)
	}
	p.Drain() // workers are gone; must not hang
}

// TestSequencer: Next is dense and monotonic under concurrency, and the
// heartbeat clock is a monotonic max readable lock-free.
func TestSequencer(t *testing.T) {
	q := shard.NewSequencer()
	if q.LastHeartbeat() != types.MinTime {
		t.Fatalf("fresh sequencer clock = %s, want MinTime", q.LastHeartbeat())
	}
	var wg sync.WaitGroup
	seen := make([]atomic.Bool, 1000)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				s := q.Next()
				if s < 1 || s > 1000 {
					t.Errorf("seq %d out of range", s)
					return
				}
				if seen[s-1].Swap(true) {
					t.Errorf("seq %d issued twice", s)
				}
			}
		}()
	}
	wg.Wait()
	if q.Last() != 1000 {
		t.Fatalf("Last = %d, want 1000", q.Last())
	}
	q.RecordHeartbeat(100)
	q.RecordHeartbeat(50) // regress: ignored
	if q.LastHeartbeat() != 100 {
		t.Fatalf("LastHeartbeat = %s, want 100", q.LastHeartbeat())
	}
	q.RecordHeartbeat(250)
	if q.LastHeartbeat() != 250 {
		t.Fatalf("LastHeartbeat = %s, want 250", q.LastHeartbeat())
	}
}
