// Package shard implements the sharded ingest subsystem behind the live
// manager: a global commit sequencer plus a pool of shard workers, each with
// a bounded FIFO ingest queue.
//
// The division of labor is the paper-preserving part. A commit still happens
// under one short critical section (the manager's ordering lock): validate,
// write-ahead-log, apply to the catalog, acquire the next global sequence
// number — ack == durable is unchanged. Only the fan-out moves off the
// committing goroutine: every resident session is placed on exactly one
// shard (a hash of its pipeline id, never rebalanced), and the commit
// enqueues one task per affected shard while still inside the critical
// section. Per-shard queues are FIFO and each shard has a single worker, so
// a shard applies its tasks in exactly the global commit order restricted to
// its sessions — which is why a subscriber's delta sequence through the
// sharded path is byte-identical to the serial fan-out, and why a
// Block-policy subscriber that stops draining stalls only its own shard.
//
// Backpressure composes: a full shard queue blocks Enqueue, i.e. the
// committing publisher, exactly as a parked serial fan-out would — just with
// `depth` commits of slack instead of zero.
package shard

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/types"
)

// Sequencer issues global commit sequence numbers and tracks the last
// broadcast processing-time heartbeat. Both values are advanced only inside
// the owning manager's commit critical section, so they are authoritative
// ordering-path state; reads are atomic and lock-free, which is what lets a
// registration catch a new session up to the clock without racing the
// asynchronous shard application of the very heartbeats it reads.
type Sequencer struct {
	seq    atomic.Uint64
	lastPt atomic.Int64 // types.Time
}

// NewSequencer starts at sequence 0 with the clock at MinTime.
func NewSequencer() *Sequencer {
	q := &Sequencer{}
	q.lastPt.Store(int64(types.MinTime))
	return q
}

// Next allocates the next commit sequence number. Call only inside the
// commit critical section.
func (q *Sequencer) Next() uint64 { return q.seq.Add(1) }

// Last returns the most recently allocated sequence number (0 = none).
func (q *Sequencer) Last() uint64 { return q.seq.Load() }

// RecordHeartbeat advances the last-heartbeat clock to pt if it moved
// forward. Call only inside the commit critical section, before the
// heartbeat is enqueued to any shard.
func (q *Sequencer) RecordHeartbeat(pt types.Time) {
	if pt > types.Time(q.lastPt.Load()) {
		q.lastPt.Store(int64(pt))
	}
}

// LastHeartbeat returns the latest committed heartbeat (MinTime = none).
// Lock-free: safe from any goroutine.
func (q *Sequencer) LastHeartbeat() types.Time { return types.Time(q.lastPt.Load()) }

// Task is one sequenced unit of fan-out work on one shard.
type Task struct {
	// Seq is the commit's global sequence number, for lag observability.
	Seq uint64
	// Apply performs the fan-out (feeding the shard's matching sessions).
	// It must not take the enqueuing manager's lock: a publisher may hold
	// it while blocked on this shard's full queue.
	Apply func()
}

// Stat is one shard's point-in-time queue observability snapshot.
type Stat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Depth is the number of tasks queued but not yet picked up.
	Depth int `json:"depth"`
	// Lag is the number of enqueued tasks not yet fully applied
	// (Depth plus any task the worker is mid-apply).
	Lag int `json:"lag"`
	// LastSeq is the sequence number of the last fully applied task.
	LastSeq uint64 `json:"lastSeq"`
}

// worker is one shard: a FIFO task queue and the single goroutine applying
// it. enqueued/applied are cumulative task counts; waiting on
// applied >= enqueued-at-some-instant is the drain barrier.
type worker struct {
	tasks    chan Task
	enqueued atomic.Uint64
	applied  atomic.Uint64
	lastSeq  atomic.Uint64

	// mApply (nil without observability) records per-task apply latency.
	// Set before the worker goroutine starts; methods are nil-safe.
	mApply *obs.Histogram

	mu   sync.Mutex
	cond *sync.Cond
	done bool // the worker goroutine has exited
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for t := range w.tasks {
		t0 := time.Now()
		runTask(t)
		w.mApply.ObserveSince(t0)
		w.lastSeq.Store(t.Seq)
		w.mu.Lock()
		w.applied.Add(1)
		w.cond.Broadcast()
		w.mu.Unlock()
	}
	w.mu.Lock()
	w.done = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// runTask is the worker's last-resort panic backstop. The fan-out layer
// (internal/live) converts per-session panics to session errors before
// they reach the task boundary; anything that still escapes must not kill
// the worker goroutine — a dead worker would silently wedge its shard's
// queue and every drain barrier behind it. The sequence point is still
// recorded by the caller, so barriers keep advancing.
func runTask(t Task) {
	defer func() { recover() }() //nolint:errcheck
	t.Apply()
}

// waitApplied blocks until the worker has applied at least target tasks (or
// has shut down). The fast path is one atomic load.
func (w *worker) waitApplied(target uint64) {
	if w.applied.Load() >= target {
		return
	}
	w.mu.Lock()
	for w.applied.Load() < target && !w.done {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Pool is a fixed set of shard workers. It is created with its final shard
// count; sessions are never rebalanced across shards.
type Pool struct {
	workers []*worker
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// DefaultQueueDepth bounds each shard's ingest queue when the caller does
// not choose one: enough slack to decouple the committer from transient
// consumer stalls, small enough that backpressure still reaches the
// publisher quickly.
const DefaultQueueDepth = 64

// NewPool starts n shard workers with bounded queues of the given depth
// (DefaultQueueDepth when depth <= 0). n must be >= 1.
func NewPool(n, depth int) *Pool {
	return NewPoolObs(n, depth, nil)
}

// NewPoolObs is NewPool with shard_* metric families registered on reg
// (nil reg = no observability, identical to NewPool). Per-shard queue
// depth/lag gauges and enqueue/apply counters are sampled from the workers'
// existing atomics at scrape time; apply latency is recorded by the worker
// goroutine into a pool-wide histogram. All metric state is wired before
// any worker goroutine starts, so workers never race the registration.
func NewPoolObs(n, depth int, reg *obs.Registry) *Pool {
	if n < 1 {
		n = 1
	}
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	p := &Pool{workers: make([]*worker, n)}
	var mApply *obs.Histogram
	if reg != nil {
		mApply = reg.Histogram("shard_apply_seconds", "Per-task shard apply latency.",
			obs.DurationScale, obs.DurationBuckets)
	}
	for i := range p.workers {
		w := &worker{tasks: make(chan Task, depth), mApply: mApply}
		w.cond = sync.NewCond(&w.mu)
		p.workers[i] = w
		if reg != nil {
			sh := strconv.Itoa(i)
			reg.GaugeFunc("shard_queue_depth", "Tasks queued but not yet picked up, per shard.",
				func() float64 { return float64(len(w.tasks)) }, "shard", sh)
			reg.GaugeFunc("shard_lag", "Enqueued tasks not yet fully applied, per shard.",
				func() float64 { return float64(w.enqueued.Load() - w.applied.Load()) }, "shard", sh)
			reg.CounterFunc("shard_enqueued_total", "Tasks enqueued, per shard.",
				func() float64 { return float64(w.enqueued.Load()) }, "shard", sh)
			reg.CounterFunc("shard_applied_total", "Tasks fully applied, per shard.",
				func() float64 { return float64(w.applied.Load()) }, "shard", sh)
		}
		p.wg.Add(1)
		go w.run(&p.wg)
	}
	return p
}

// Shards reports the number of shard workers.
func (p *Pool) Shards() int { return len(p.workers) }

// ShardOf places a pipeline id on its shard: an FNV-1a hash of the id,
// modulo the shard count. The placement is a pure function of (id, shards),
// so a session stays on one shard for its whole life.
func (p *Pool) ShardOf(id int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	v := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return int(h % uint64(len(p.workers)))
}

// Enqueue appends one task to a shard's FIFO queue, blocking while the
// queue is full (that block is the backpressure path to the publisher).
// Callers serialize Enqueue under their commit critical section; per-shard
// FIFO order therefore equals global commit order restricted to the shard.
func (p *Pool) Enqueue(sh int, seq uint64, apply func()) {
	w := p.workers[sh]
	w.enqueued.Add(1)
	w.tasks <- Task{Seq: seq, Apply: apply}
}

// DrainShard blocks until every task enqueued to the shard before the call
// has been applied. Lock-free bookkeeping: it captures the shard's enqueued
// watermark once, so tasks enqueued concurrently with the drain are not
// waited for.
func (p *Pool) DrainShard(sh int) {
	w := p.workers[sh]
	w.waitApplied(w.enqueued.Load())
}

// Drain is DrainShard over every shard: afterwards, every commit enqueued
// before the call is applied. This is the quiesce barrier CheckpointAll and
// read-your-writes waits use.
func (p *Pool) Drain() {
	for i := range p.workers {
		p.DrainShard(i)
	}
}

// Close drains and stops the workers. Enqueue must not be called after (or
// concurrently with) Close; pending tasks are applied before the workers
// exit, so Close is itself a drain barrier. Idempotent.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.workers {
		close(w.tasks)
	}
	p.wg.Wait()
}

// Stats snapshots every shard's queue state. Lock-free.
func (p *Pool) Stats() []Stat {
	out := make([]Stat, len(p.workers))
	for i, w := range p.workers {
		enq, app := w.enqueued.Load(), w.applied.Load()
		out[i] = Stat{
			Shard:   i,
			Depth:   len(w.tasks),
			Lag:     int(enq - app),
			LastSeq: w.lastSeq.Load(),
		}
	}
	return out
}
